"""Unit tests for the snapshot-isolated live-traffic path.

Covers the pieces the live erasure workflow is assembled from:

- :class:`~repro.storage.snapshot.SnapshotRegistry` — epoch-based
  pinning, deferred reclamation, quiesce/drain;
- :class:`~repro.fl.live.LiveTrainingSession` — trainer-thread round
  loop, pacing permits, watermark publishing, snapshot pinning;
- :meth:`~repro.unlearning.service.UnlearningService._erase_live` —
  two-phase optimistic erasure: merge modes, commit conflicts, typed
  busy errors, deferred purges, persistence under pinned readers;
- the merge helpers (:mod:`repro.unlearning.merge`) and the
  ``mixed`` train/erase arrival schedule.
"""

import threading

import numpy as np
import pytest

from repro.datasets import make_synthetic_mnist, partition_iid
from repro.fl import (
    FederatedSimulation,
    LiveTrainingSession,
    RecordSnapshot,
    VehicleClient,
    load_record,
)
from repro.nn import mlp
from repro.serving.loadgen import Arrival, LoadGenerator, SCHEDULES, mixed_schedule
from repro.storage import SignGradientStore
from repro.storage.snapshot import SnapshotRegistry
from repro.unlearning import (
    NegatedPseudoGradientUnlearner,
    ServiceBusyError,
    SignRecoveryUnlearner,
    UnlearningService,
    conflict_projected_merge,
    negated_pseudo_gradient_tail,
)
from repro.utils.rng import SeedSequenceTree

NUM_ROUNDS = 6
NUM_CLIENTS = 4
IMAGE = 8
FEATURES = IMAGE * IMAGE


def build_sim(seed, **kwargs):
    """A tiny but real FL setup, rebuilt identically from its seed."""
    tree = SeedSequenceTree(seed)
    data = make_synthetic_mnist(120, tree.rng("data"), image_size=IMAGE)
    shards = partition_iid(data, NUM_CLIENTS, tree.rng("part"))
    clients = [
        VehicleClient(i, shards[i], tree.rng(f"c{i}"), batch_size=16)
        for i in range(NUM_CLIENTS)
    ]
    model = mlp(tree.rng("model"), FEATURES, 10, hidden=8)
    return model, FederatedSimulation(
        model, clients, 2e-3, gradient_store=SignGradientStore(), **kwargs
    )


def make_live_service(seed, merge_mode="replay", **session_kwargs):
    """(model, session, service) over a paced tiny simulation."""
    model, sim = build_sim(seed)
    session = LiveTrainingSession(sim, NUM_ROUNDS, paced=True, **session_kwargs)
    service = UnlearningService(
        record=sim.record_view(0),
        model=model,
        clip_threshold=5.0,
        prefetch_depth=0,
        merge_mode=merge_mode,
    ).bind_live(session)
    return model, session, service


def reference_erase(seed, client_ids, num_rounds):
    """Stop-the-world reference: train ``num_rounds``, then unlearn."""
    model, sim = build_sim(seed)
    record = sim.run(num_rounds)
    return SignRecoveryUnlearner(clip_threshold=5.0).unlearn(
        record, client_ids, model
    )


# ----------------------------------------------------------------------
# SnapshotRegistry
# ----------------------------------------------------------------------
class TestSnapshotRegistry:
    def test_defer_runs_immediately_without_readers(self):
        registry = SnapshotRegistry()
        ran = []
        assert registry.defer(lambda: ran.append(1)) is True
        assert ran == [1]
        assert registry.pending() == 0
        assert registry.deferred_total == 0

    def test_defer_queues_behind_active_pin(self):
        registry = SnapshotRegistry()
        ran = []
        pin = registry.pin()
        assert registry.defer(lambda: ran.append(1)) is False
        assert ran == []
        assert registry.pending() == 1
        pin.release()
        assert ran == [1]
        assert registry.pending() == 0
        assert registry.deferred_total == 1
        assert registry.flushed_total == 1

    def test_pins_after_the_barrier_never_block_the_action(self):
        registry = SnapshotRegistry()
        ran = []
        old = registry.pin()
        registry.defer(lambda: ran.append(1))
        # Taken *after* the barrier: its owner already sees the
        # post-reclaim logical state, so it must not delay the flush.
        new = registry.pin()
        assert old.epoch < new.epoch
        old.release()
        assert ran == [1]
        assert registry.active_pins() == 1
        new.release()

    def test_release_is_idempotent(self):
        registry = SnapshotRegistry()
        pin = registry.pin()
        pin.release()
        pin.release()
        assert registry.active_pins() == 0
        assert registry.pins_total == 1

    def test_pin_context_manager(self):
        registry = SnapshotRegistry()
        with registry.pin() as pin:
            assert registry.active_pins() == 1
        assert pin.released
        assert registry.active_pins() == 0

    def test_quiesce_times_out_while_pinned(self):
        registry = SnapshotRegistry()
        pin = registry.pin()
        assert registry.quiesce(timeout=0.05) is False
        pin.release()
        assert registry.quiesce(timeout=0.05) is True

    def test_drain_flushes_everything(self):
        registry = SnapshotRegistry()
        ran = []
        pin = registry.pin()
        registry.defer(lambda: ran.append("a"))
        registry.defer(lambda: ran.append("b"))
        releaser = threading.Timer(0.05, pin.release)
        releaser.start()
        try:
            assert registry.drain(timeout=5.0) is True
        finally:
            releaser.join()
        assert sorted(ran) == ["a", "b"]
        assert registry.pending() == 0
        assert registry.flushed_total == 2


# ----------------------------------------------------------------------
# LiveTrainingSession
# ----------------------------------------------------------------------
class TestLiveTrainingSession:
    def test_free_running_result_matches_run_bitwise(self):
        _, sim_a = build_sim(11)
        reference = sim_a.run(NUM_ROUNDS)
        _, sim_b = build_sim(11)
        session = LiveTrainingSession(sim_b, NUM_ROUNDS).start()
        record = session.result(timeout=120)
        np.testing.assert_array_equal(
            record.final_params(), reference.final_params()
        )
        for t in range(NUM_ROUNDS + 1):
            np.testing.assert_array_equal(
                record.params_at(t), reference.params_at(t)
            )
        assert record.ledger.to_dict() == reference.ledger.to_dict()

    def test_paced_trainer_waits_for_permits(self):
        _, sim = build_sim(12)
        session = LiveTrainingSession(sim, NUM_ROUNDS, paced=True).start()
        try:
            session.allow_rounds(2)
            assert session.wait_for_round(2, timeout=60)
            assert session.watermark == 2
            assert not session.done
        finally:
            session.release_pacing()
        record = session.result(timeout=120)
        assert record.num_rounds == NUM_ROUNDS

    def test_paced_completion_needs_exactly_num_rounds_permits(self):
        # Regression: draining the generator's StopIteration after the
        # final committed round must not consume an extra permit.
        _, sim = build_sim(13)
        session = LiveTrainingSession(sim, NUM_ROUNDS, paced=True).start()
        session.allow_rounds(NUM_ROUNDS)
        record = session.result(timeout=120)
        assert record.num_rounds == NUM_ROUNDS

    def test_stop_early_returns_committed_prefix(self):
        _, sim = build_sim(14)
        session = LiveTrainingSession(sim, NUM_ROUNDS, paced=True).start()
        session.allow_rounds(3)
        assert session.wait_for_round(3, timeout=60)
        session.stop()
        record = session.result(timeout=60)
        assert record.num_rounds == 3

    def test_pin_snapshot_freezes_the_watermark_view(self):
        _, sim = build_sim(15)
        session = LiveTrainingSession(sim, NUM_ROUNDS, paced=True).start()
        session.allow_rounds(3)
        assert session.wait_for_round(3, timeout=60)
        snap = session.pin_snapshot()
        try:
            assert isinstance(snap, RecordSnapshot)
            assert snap.watermark == 3
            assert snap.num_rounds == 3
            frozen = snap.final_params().copy()
            np.testing.assert_array_equal(snap.params_at_watermark, frozen)
            members = snap.ledger.participants_at(2)
            session.release_pacing()
            record = session.result(timeout=120)
            # Training ran to completion underneath the pin; the
            # snapshot still reads the round-3 state.
            assert snap.num_rounds == 3
            np.testing.assert_array_equal(snap.final_params(), frozen)
            np.testing.assert_array_equal(record.params_at(3), frozen)
            assert snap.ledger.participants_at(2) == members
            assert session.registry.active_pins() == 1
        finally:
            snap.release()
        assert session.registry.active_pins() == 0

    def test_snapshot_is_a_context_manager(self):
        _, sim = build_sim(16)
        session = LiveTrainingSession(sim, NUM_ROUNDS).start()
        session.result(timeout=120)
        with session.pin_snapshot() as snap:
            assert session.registry.active_pins() == 1
            assert snap.watermark == NUM_ROUNDS
        assert session.registry.active_pins() == 0

    def test_lifecycle_misuse_raises(self):
        _, sim = build_sim(17)
        session = LiveTrainingSession(sim, NUM_ROUNDS)
        with pytest.raises(RuntimeError, match="never started"):
            session.result()
        session.start()
        with pytest.raises(RuntimeError, match="already started"):
            session.start()
        session.result(timeout=120)
        with pytest.raises(ValueError):
            LiveTrainingSession(sim, 0)


# ----------------------------------------------------------------------
# two-phase live erasure
# ----------------------------------------------------------------------
class TestLiveErasure:
    def run_to(self, session, n):
        session.allow_rounds(n)
        assert session.wait_for_round(n, timeout=60)

    def advance_during_phase1(self, session, service, extra_rounds):
        """Patch the service's unlearner factory so the first phase-1
        replay deterministically overlaps ``extra_rounds`` of training
        — the commit then has a non-empty tail to merge."""
        orig_factory = service._unlearner
        fired = []

        def factory(cancel_check=None):
            unlearner = orig_factory(cancel_check)
            orig_unlearn = unlearner.unlearn

            def unlearn(record, forget_ids, model, *args, **kwargs):
                result = orig_unlearn(record, forget_ids, model, *args, **kwargs)
                if not fired:
                    fired.append(True)
                    session.allow_rounds(extra_rounds)
                    assert session.wait_for_round(
                        record.num_rounds + extra_rounds, timeout=60
                    )
                return result

            unlearner.unlearn = unlearn
            return unlearner

        service._unlearner = factory

    def test_zero_tail_commit_is_the_counterfactual(self):
        _, session, service = make_live_service(21)
        session.start()
        try:
            self.run_to(session, 4)
            outcome = service.handle_erasure_request(1)
        finally:
            session.release_pacing()
        record = session.result(timeout=120)
        assert outcome.snapshot_watermark == 4
        assert outcome.commit_round == 4
        assert outcome.merge_mode == "replay"
        assert outcome.commit_conflicts == 0
        reference = reference_erase(21, [1], 4)
        assert outcome.params.tobytes() == reference.params.tobytes()
        # The merged model was installed as the round-4 checkpoint
        # (exact at the checkpoint store's float32 precision).
        np.testing.assert_array_equal(
            np.asarray(record.params_at(4), dtype=np.float32),
            np.asarray(outcome.params, dtype=np.float32),
        )

    def test_replay_merge_with_tail_matches_sequential_reference(self):
        _, session, service = make_live_service(22)
        self.advance_during_phase1(session, service, extra_rounds=2)
        session.start()
        try:
            self.run_to(session, 3)
            outcome = service.handle_erasure_request(2)
        finally:
            session.release_pacing()
        record = session.result(timeout=120)
        assert outcome.snapshot_watermark == 3
        assert outcome.commit_round == 5
        assert outcome.merge_mode == "replay"
        reference = reference_erase(22, [2], 5)
        assert outcome.params.tobytes() == reference.params.tobytes()
        # No resurrection: the erased vehicle never re-enters training
        # after the commit round, and its stored rounds are purged.
        for t in range(outcome.commit_round, NUM_ROUNDS):
            assert 2 not in record.ledger.participants_at(t)
        for t in range(NUM_ROUNDS):
            assert not record.gradients.has(t, 2)
        assert record.metadata["erased_clients"] == [2]
        (commit,) = record.metadata["merge_commits"]
        assert commit["clients"] == [2]
        assert commit["watermark"] == 3
        assert commit["commit_round"] == 5
        assert commit["mode"] == "replay"

    @pytest.mark.parametrize("mode", ["project", "npg"])
    def test_approximate_merge_modes_commit_their_tail(self, mode):
        _, session, service = make_live_service(23, merge_mode=mode)
        self.advance_during_phase1(session, service, extra_rounds=2)
        session.start()
        try:
            self.run_to(session, 3)
            outcome = service.handle_erasure_request(1)
        finally:
            session.release_pacing()
        record = session.result(timeout=120)
        assert outcome.merge_mode == mode
        assert outcome.commit_round - outcome.snapshot_watermark == 2
        assert np.all(np.isfinite(outcome.params))
        # Approximate modes still install, exclude, and purge exactly
        # (checkpoint readback is float32, the store's precision).
        np.testing.assert_array_equal(
            np.asarray(record.params_at(outcome.commit_round), dtype=np.float32),
            np.asarray(outcome.params, dtype=np.float32),
        )
        for t in range(outcome.commit_round, NUM_ROUNDS):
            assert 1 not in record.ledger.participants_at(t)
        for t in range(NUM_ROUNDS):
            assert not record.gradients.has(t, 1)
        (commit,) = record.metadata["merge_commits"]
        assert commit["mode"] == mode

    def test_commit_conflict_retries_forest_hot(self):
        _, session, service = make_live_service(24)
        orig_factory = service._unlearner
        fired = []

        def factory(cancel_check=None):
            unlearner = orig_factory(cancel_check)
            orig_unlearn = unlearner.unlearn

            def unlearn(record, forget_ids, model, *args, **kwargs):
                if not fired:
                    fired.append(True)
                    # A concurrent erasure commits while our phase-1
                    # replay runs: the forget set this commit validated
                    # against is stale.
                    service._erased.append(3)
                    service.record.metadata["erased_clients"] = [3]
                return orig_unlearn(record, forget_ids, model, *args, **kwargs)

            unlearner.unlearn = unlearn
            return unlearner

        service._unlearner = factory
        session.start()
        try:
            self.run_to(session, 4)
            outcome = service.handle_erasure_request(1)
        finally:
            session.release_pacing()
        session.result(timeout=120)
        assert outcome.commit_conflicts == 1
        assert outcome.forgotten == [1]
        # The retry folded the concurrently-erased client into its
        # forget set: the final model excludes both.
        reference = reference_erase(24, [1, 3], outcome.commit_round)
        assert outcome.params.tobytes() == reference.params.tobytes()

    def test_already_erased_client_raises(self):
        _, session, service = make_live_service(25)
        session.start()
        try:
            self.run_to(session, 4)
            service.handle_erasure_request(1)
            with pytest.raises(ValueError, match="already erased"):
                service.handle_erasure_request(1)
        finally:
            session.release_pacing()
        session.result(timeout=120)

    def test_purge_is_deferred_while_a_reader_is_pinned(self):
        _, session, service = make_live_service(26)
        session.start()
        try:
            self.run_to(session, 4)
            reader = session.pin_snapshot()
            try:
                outcome = service.handle_erasure_request(1)
                # The pinned reader still sees every round it could
                # read at pin time — physical reclamation waited.
                assert session.registry.pending() == 1
                assert any(
                    reader.gradients.has(t, 1) for t in range(reader.watermark)
                )
            finally:
                reader.release()
            # Last blocking pin gone: the purge ran.
            assert session.registry.pending() == 0
            assert not any(
                service.record.gradients.has(t, 1)
                for t in range(outcome.commit_round)
            )
        finally:
            session.release_pacing()
        session.result(timeout=120)

    def test_drain_prefetch_nonblocking_raises_typed_busy_error(self):
        _, session, service = make_live_service(27)
        session.start()
        session.release_pacing()
        session.result(timeout=120)
        held = threading.Event()
        release = threading.Event()

        def holder():
            with service.lock:
                held.set()
                release.wait(10)

        thread = threading.Thread(target=holder)
        thread.start()
        try:
            assert held.wait(10)
            with pytest.raises(ServiceBusyError) as err:
                service.drain_prefetch(blocking=False)
            assert err.value.retry_after > 0
        finally:
            release.set()
            thread.join(10)
        assert service.drain_prefetch(blocking=False) is True

    def test_persist_raises_busy_under_pinned_reader(self, tmp_path):
        _, session, service = make_live_service(28)
        session.start()
        session.release_pacing()
        session.result(timeout=120)
        pin = session.pin_snapshot()
        try:
            with pytest.raises(ServiceBusyError) as err:
                service.persist(str(tmp_path / "busy"), drain_timeout=0.1)
            assert err.value.retry_after > 0
        finally:
            pin.release()
        service.persist(str(tmp_path / "ok"), drain_timeout=5.0)
        restored = load_record(str(tmp_path / "ok"))
        assert restored.num_rounds == NUM_ROUNDS


# ----------------------------------------------------------------------
# merge helpers
# ----------------------------------------------------------------------
class TestMergeHelpers:
    def test_projection_drops_only_the_conflicting_component(self):
        base = np.zeros(4)
        live = np.array([1.0, 0.0, 0.0, 0.0])
        # u has a negative component along v = live - base: conflict.
        counterfactual = np.array([-2.0, 1.0, 0.0, 0.0])
        merged = conflict_projected_merge(base, counterfactual, live)
        residual = merged - live
        # The surviving delta is orthogonal to training progress...
        assert abs(residual @ (live - base)) < 1e-12
        # ...and keeps the non-conflicting component untouched.
        np.testing.assert_allclose(residual, [0.0, 1.0, 0.0, 0.0])

    def test_projection_is_identity_without_conflict(self):
        base = np.zeros(3)
        live = np.array([1.0, 1.0, 0.0])
        counterfactual = np.array([0.5, 0.0, 2.0])  # <u, v> > 0
        merged = conflict_projected_merge(base, counterfactual, live)
        np.testing.assert_allclose(merged, live + counterfactual)

    def test_projection_with_no_live_progress_returns_counterfactual(self):
        base = np.array([1.0, 2.0])
        counterfactual = np.array([0.0, 5.0])
        merged = conflict_projected_merge(base, counterfactual, base)
        np.testing.assert_allclose(merged, counterfactual)

    def test_npg_tail_matches_manual_weighted_sum(self):
        _, sim = build_sim(31)
        record = sim.run(NUM_ROUNDS)
        correction = negated_pseudo_gradient_tail(record, [1], 2, 5)
        expected = np.zeros_like(record.final_params())
        for t in range(2, 5):
            participants = record.ledger.participants_at(t)
            if 1 not in participants:
                continue
            total = sum(record.weight_of(c) for c in participants)
            expected += (
                record.learning_rate
                * (record.weight_of(1) / total)
                * record.gradients.get(t, 1)
            )
        np.testing.assert_allclose(correction, expected)
        assert np.linalg.norm(correction) > 0

    def test_npg_tail_is_zero_for_empty_window_or_absent_client(self):
        _, sim = build_sim(32)
        record = sim.run(NUM_ROUNDS)
        zeros = np.zeros(record.final_params().size)
        np.testing.assert_array_equal(
            negated_pseudo_gradient_tail(record, [0], 3, 3), zeros
        )
        np.testing.assert_array_equal(
            negated_pseudo_gradient_tail(record, [99], 0, NUM_ROUNDS), zeros
        )

    def test_npg_unlearner_applies_full_history_correction(self):
        model, sim = build_sim(33)
        record = sim.run(NUM_ROUNDS)
        result = NegatedPseudoGradientUnlearner().unlearn(record, [2], model)
        expected = record.final_params() + negated_pseudo_gradient_tail(
            record, [2], 0, NUM_ROUNDS
        )
        np.testing.assert_allclose(result.params, expected)
        assert result.rounds_replayed == 0
        assert result.stats["forgotten_contributions"] > 0
        with pytest.raises(ValueError, match="unknown clients"):
            NegatedPseudoGradientUnlearner().unlearn(record, [42], model)


# ----------------------------------------------------------------------
# mixed train/erase arrival schedule
# ----------------------------------------------------------------------
class TestMixedSchedule:
    def test_registered_and_deterministic(self):
        assert SCHEDULES["mixed"] is mixed_schedule
        a = mixed_schedule(20.0, 2.0, range(6), seed=5)
        b = mixed_schedule(20.0, 2.0, range(6), seed=5)
        assert [(x.at_seconds, x.kind, x.key) for x in a] == [
            (x.at_seconds, x.kind, x.key) for x in b
        ]
        kinds = {x.kind for x in a}
        assert kinds == {"train", "erase"}
        assert all(x.client_ids == () for x in a if x.kind == "train")
        times = [x.at_seconds for x in a]
        assert times == sorted(times)

    def test_train_fraction_bounds(self):
        with pytest.raises(ValueError, match="train_fraction"):
            mixed_schedule(5.0, 1.0, range(4), train_fraction=1.5)
        only_train = mixed_schedule(30.0, 2.0, range(4), train_fraction=1.0)
        assert all(x.kind == "train" for x in only_train)

    def test_generator_dispatches_train_arrivals_to_sink(self):
        schedule = mixed_schedule(30.0, 1.0, range(4), seed=9, train_fraction=1.0)
        granted = []
        generator = LoadGenerator(
            daemon=None,
            clock=lambda: 1e9,  # every arrival is already due
            sleep=lambda s: None,
            train_sink=granted.append,
        )
        generator.run(schedule, label="mixed-test")
        assert generator.train_dispatched == len(schedule)
        assert [a.key for a in granted] == [a.key for a in schedule]

    def test_generator_requires_sink_for_train_arrivals(self):
        generator = LoadGenerator(
            daemon=None, clock=lambda: 1e9, sleep=lambda s: None
        )
        arrival = Arrival(at_seconds=0.0, client_ids=(), key="t-0", kind="train")
        with pytest.raises(ValueError, match="train_sink"):
            generator.run([arrival])
