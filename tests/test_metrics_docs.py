"""Docs-lint: the metrics contract in ``docs/METRICS.md`` and the
machine-readable catalog (``repro.telemetry.catalog.METRICS``) must be
equivalent — in both directions.

A metric added to the catalog without a documentation row fails here,
and so does a documented metric the runtime no longer declares.  Run
via ``make docs-lint`` or as part of the normal suite.
"""

import os
import re

import pytest

from repro.telemetry.catalog import COUNTER, GAUGE, HISTOGRAM, METRICS

DOCS_PATH = os.path.join(os.path.dirname(__file__), "..", "docs", "METRICS.md")


def parse_doc_rows():
    """Extract ``{name: (kind, unit, labels)}`` from METRICS.md table rows.

    A metric row is a markdown table row whose first cell is a single
    backticked metric name; the labels cell lists backticked label keys
    (or an em-dash for none).
    """
    rows = {}
    with open(DOCS_PATH, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line.startswith("|"):
                continue
            cells = [c.strip() for c in line.strip("|").split("|")]
            if len(cells) < 5:
                continue
            m = re.fullmatch(r"`([a-z0-9_]+)`", cells[0])
            if not m:
                continue
            labels = tuple(re.findall(r"`([a-z0-9_]+)`", cells[3]))
            rows[m.group(1)] = (cells[1], cells[2], labels)
    return rows


@pytest.fixture(scope="module")
def doc_rows():
    return parse_doc_rows()


def test_docs_file_exists_and_parses(doc_rows):
    assert os.path.exists(DOCS_PATH)
    assert doc_rows, "no metric table rows parsed from docs/METRICS.md"


def test_every_catalog_metric_is_documented(doc_rows):
    missing = sorted(set(METRICS) - set(doc_rows))
    assert not missing, (
        f"metrics declared in the catalog but absent from docs/METRICS.md: "
        f"{missing}"
    )


def test_every_documented_metric_is_declared(doc_rows):
    stale = sorted(set(doc_rows) - set(METRICS))
    assert not stale, (
        f"metrics documented in docs/METRICS.md but not declared in "
        f"repro/telemetry/catalog.py: {stale}"
    )


def test_documented_kind_unit_and_labels_match_catalog(doc_rows):
    mismatches = []
    for name, (kind, unit, labels) in sorted(doc_rows.items()):
        spec = METRICS.get(name)
        if spec is None:
            continue  # covered by the direction tests above
        if kind != spec.kind:
            mismatches.append(f"{name}: doc kind {kind!r} != catalog {spec.kind!r}")
        if unit != spec.unit:
            mismatches.append(f"{name}: doc unit {unit!r} != catalog {spec.unit!r}")
        if tuple(sorted(labels)) != tuple(sorted(spec.labels)):
            mismatches.append(
                f"{name}: doc labels {sorted(labels)} != catalog {sorted(spec.labels)}"
            )
    assert not mismatches, "\n".join(mismatches)


def test_doc_sections_mention_emitting_modules():
    with open(DOCS_PATH, encoding="utf-8") as fh:
        text = fh.read()
    for module in sorted({s.module for s in METRICS.values()}):
        assert f"`{module}`" in text, (
            f"docs/METRICS.md never names emitting module {module}"
        )


def test_docs_are_linked_from_readme_and_experiments():
    root = os.path.join(os.path.dirname(__file__), "..")
    for fname in ("README.md", "EXPERIMENTS.md"):
        with open(os.path.join(root, fname), encoding="utf-8") as fh:
            assert "docs/METRICS.md" in fh.read(), (
                f"{fname} does not link docs/METRICS.md"
            )


def test_architecture_doc_names_every_instrumented_module():
    path = os.path.join(os.path.dirname(__file__), "..", "docs", "ARCHITECTURE.md")
    with open(path, encoding="utf-8") as fh:
        text = fh.read()
    for module in sorted({s.module for s in METRICS.values()}):
        # named as a module path or as its src-relative file
        rel = module.replace("repro.", "").replace(".", "/") + ".py"
        assert module in text or rel in text, (
            f"docs/ARCHITECTURE.md never mentions instrumented module {module}"
        )


# ---------------------------------------------------------------------------
# Makefile targets referenced in the docs must exist
# ---------------------------------------------------------------------------

_ROOT = os.path.join(os.path.dirname(__file__), "..")

#: Docs swept for `make <target>` references.
_DOC_FILES = ("README.md", "EXPERIMENTS.md")


def parse_makefile_targets():
    """Target names declared in the top-level Makefile (rule lines)."""
    targets = set()
    with open(os.path.join(_ROOT, "Makefile"), encoding="utf-8") as fh:
        for line in fh:
            m = re.match(r"^([A-Za-z0-9_.-]+)\s*:", line)
            if m:
                targets.add(m.group(1))
    targets.discard(".PHONY")
    return targets


def doc_make_references():
    """``{(file, target)}`` for every ``make <target>`` a doc mentions.

    Catches both inline code (`` `make docs-lint` ``) and fenced shell
    blocks whose line starts with ``make <target>``.
    """
    refs = set()
    files = list(_DOC_FILES) + sorted(
        os.path.join("docs", f)
        for f in os.listdir(os.path.join(_ROOT, "docs"))
        if f.endswith(".md")
    )
    for fname in files:
        with open(os.path.join(_ROOT, fname), encoding="utf-8") as fh:
            text = fh.read()
        for target in re.findall(r"`make ([A-Za-z0-9_.-]+)`", text):
            refs.add((fname, target))
        for line in text.splitlines():
            m = re.match(r"^\s*make ([A-Za-z0-9_.-]+)\s*(?:#.*)?$", line)
            if m:
                refs.add((fname, m.group(1)))
    return refs


def test_makefile_parses_and_docs_reference_targets():
    assert "test" in parse_makefile_targets()
    refs = doc_make_references()
    assert refs, "no `make <target>` references parsed from any doc"


def test_every_make_target_referenced_in_docs_exists():
    targets = parse_makefile_targets()
    phantom = sorted(
        f"{fname}: `make {target}`"
        for fname, target in doc_make_references()
        if target not in targets
    )
    assert not phantom, (
        "docs reference make targets the Makefile does not declare:\n"
        + "\n".join(phantom)
    )
