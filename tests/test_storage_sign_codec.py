"""Tests for the 2-bit ternary sign codec, incl. hypothesis round trips."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import (
    decode_gradient,
    decode_round,
    encode_gradient,
    encode_round,
    pack_signs,
    pack_signs_batch,
    packed_size_bytes,
    storage_savings_ratio,
    ternarize,
    unpack_signs,
)


class TestTernarize:
    def test_paper_definition(self):
        """>δ -> +1, <-δ -> -1, between -> 0 (§IV)."""
        g = np.array([0.5, -0.5, 1e-8, -1e-8, 0.0])
        np.testing.assert_array_equal(ternarize(g, 1e-6), [1, -1, 0, 0, 0])

    def test_boundary_exactly_delta_is_zero(self):
        np.testing.assert_array_equal(ternarize(np.array([1e-6, -1e-6]), 1e-6), [0, 0])

    def test_zero_delta(self):
        g = np.array([0.1, -0.1, 0.0])
        np.testing.assert_array_equal(ternarize(g, 0.0), [1, -1, 0])

    def test_large_delta_zeroes_everything(self):
        g = np.array([0.5, -0.5])
        np.testing.assert_array_equal(ternarize(g, 1.0), [0, 0])

    def test_negative_delta_raises(self):
        with pytest.raises(ValueError):
            ternarize(np.zeros(3), -1.0)

    def test_dtype(self):
        assert ternarize(np.array([1.0]), 0.1).dtype == np.int8

    def test_preserves_shape(self, rng):
        g = rng.normal(size=(3, 4, 5))
        assert ternarize(g, 1e-6).shape == (3, 4, 5)


class TestPackUnpack:
    def test_round_trip(self, rng):
        signs = rng.choice([-1, 0, 1], size=101).astype(np.int8)
        packed, length = pack_signs(signs)
        np.testing.assert_array_equal(unpack_signs(packed, length), signs)

    def test_packing_density(self):
        """4 ternary values per byte."""
        packed, _ = pack_signs(np.zeros(100, dtype=np.int8))
        assert packed.nbytes == 25

    def test_padding(self):
        for n in (1, 2, 3, 4, 5):
            packed, length = pack_signs(np.ones(n, dtype=np.int8))
            assert length == n
            np.testing.assert_array_equal(unpack_signs(packed, n), np.ones(n))

    def test_empty(self):
        packed, length = pack_signs(np.zeros(0, dtype=np.int8))
        assert length == 0
        assert unpack_signs(packed, 0).shape == (0,)

    def test_invalid_values_raise(self):
        with pytest.raises(ValueError):
            pack_signs(np.array([2], dtype=np.int8))

    def test_non_flat_raises(self):
        with pytest.raises(ValueError):
            pack_signs(np.zeros((2, 2), dtype=np.int8))

    def test_short_buffer_raises(self):
        packed, _ = pack_signs(np.zeros(4, dtype=np.int8))
        with pytest.raises(ValueError):
            unpack_signs(packed, 100)

    @given(st.lists(st.sampled_from([-1, 0, 1]), min_size=0, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_round_trip_property(self, values):
        signs = np.array(values, dtype=np.int8)
        packed, length = pack_signs(signs)
        np.testing.assert_array_equal(unpack_signs(packed, length), signs)


class TestEncodeDecode:
    def test_encode_equals_ternarize_then_pack(self, rng):
        g = rng.normal(size=57) * 1e-3
        packed, length = encode_gradient(g, 1e-4)
        decoded = decode_gradient(packed, length)
        np.testing.assert_array_equal(decoded, ternarize(g, 1e-4).astype(np.float64))

    def test_decode_is_float(self, rng):
        packed, length = encode_gradient(rng.normal(size=9), 1e-6)
        assert decode_gradient(packed, length).dtype == np.float64

    @given(st.integers(1, 300))
    @settings(max_examples=30, deadline=None)
    def test_round_trip_any_length(self, n):
        rng = np.random.default_rng(n)
        g = rng.normal(size=n)
        packed, length = encode_gradient(g, 1e-6)
        assert length == n
        decoded = decode_gradient(packed, length)
        assert set(np.unique(decoded)).issubset({-1.0, 0.0, 1.0})


class TestDecodeRound:
    """Bulk round decode must equal per-client unpacking, bit for bit."""

    # The codec test matrix: every delta / vector-length shape the codec
    # tests exercise, plus the degenerate cohorts.
    DELTAS = [0.0, 1e-6, 1e-4, 1.0]
    LENGTHS = [1, 3, 4, 5, 57, 101]

    @pytest.mark.parametrize("delta", DELTAS)
    @pytest.mark.parametrize("length", LENGTHS)
    def test_identity_vs_per_client_unpack(self, delta, length):
        rng = np.random.default_rng(length)
        gradients = rng.normal(size=(5, length)) * 10.0 ** float(rng.integers(-6, 1))
        packed, enc_length = encode_round(gradients, delta)
        assert enc_length == length
        decoded = decode_round(packed, length)
        assert decoded.shape == (5, length)
        assert decoded.dtype == np.float64
        for i in range(5):
            np.testing.assert_array_equal(
                decoded[i], unpack_signs(packed[i], length).astype(np.float64)
            )
            np.testing.assert_array_equal(decoded[i], decode_gradient(packed[i], length))

    def test_empty_cohort(self):
        """A round with zero clients decodes to an empty (0, d) matrix."""
        packed = np.empty((0, packed_size_bytes(7)), dtype=np.uint8)
        decoded = decode_round(packed, 7)
        assert decoded.shape == (0, 7)
        assert decoded.dtype == np.float64

    def test_zero_length_round(self):
        packed, length = pack_signs_batch(np.zeros((3, 0), dtype=np.int8))
        decoded = decode_round(packed, length)
        assert decoded.shape == (3, 0)

    def test_all_zero_signs(self):
        """δ larger than every element stores all-zero directions."""
        packed, length = encode_round(np.full((4, 9), 0.5), delta=1.0)
        decoded = decode_round(packed, length)
        np.testing.assert_array_equal(decoded, np.zeros((4, 9)))
        for i in range(4):
            np.testing.assert_array_equal(
                decoded[i], unpack_signs(packed[i], length).astype(np.float64)
            )

    def test_round_trip_through_encode_round(self, rng):
        g = rng.normal(size=(6, 33)) * 1e-3
        packed, length = encode_round(g, 1e-4)
        np.testing.assert_array_equal(
            decode_round(packed, length), ternarize(g, 1e-4).astype(np.float64)
        )

    def test_non_2d_raises(self):
        with pytest.raises(ValueError):
            decode_round(np.zeros(4, dtype=np.uint8), 4)

    def test_short_rows_raise(self):
        with pytest.raises(ValueError):
            decode_round(np.zeros((2, 1), dtype=np.uint8), 100)

    def test_negative_length_raises(self):
        with pytest.raises(ValueError):
            decode_round(np.zeros((2, 1), dtype=np.uint8), -1)

    @given(st.integers(0, 6), st.integers(0, 120))
    @settings(max_examples=40, deadline=None)
    def test_identity_property(self, rows, length):
        rng = np.random.default_rng(rows * 1000 + length)
        signs = rng.choice([-1, 0, 1], size=(rows, length)).astype(np.int8)
        packed, enc_length = pack_signs_batch(signs)
        decoded = decode_round(packed, enc_length)
        assert decoded.shape == (rows, length)
        for i in range(rows):
            np.testing.assert_array_equal(
                decoded[i], unpack_signs(packed[i], length).astype(np.float64)
            )


class TestStorageAccounting:
    def test_packed_size(self):
        assert packed_size_bytes(0) == 0
        assert packed_size_bytes(1) == 1
        assert packed_size_bytes(4) == 1
        assert packed_size_bytes(5) == 2

    def test_savings_ratio_paper_claim(self):
        """2 bits vs 32 bits = 93.75% saved — 'approximately 95%'."""
        ratio = storage_savings_ratio(1_000_000)
        assert ratio == pytest.approx(0.9375, abs=1e-6)

    def test_savings_vs_float64(self):
        assert storage_savings_ratio(1000, full_dtype_bytes=8) == pytest.approx(
            1 - 250 / 8000
        )

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            packed_size_bytes(-1)
        with pytest.raises(ValueError):
            storage_savings_ratio(0)
