"""Tests for the zero-copy parameter arena and allocation-free core.

Three families of guarantees:

1. **Aliasing/ownership semantics** — layer parameters really are views
   into the model's flat buffers, view identity is stable across
   ``set_flat_params``/training, and clones/pickles rebuild their own
   arena instead of sharing one.
2. **Bitwise equivalence** — the golden hashes below were captured from
   the pre-arena implementation (PR 3 head).  A seeded federated run,
   its sign recovery, and a CNN train step must reproduce them exactly:
   the arena is a memory-layout change, not a numeric change.
3. **Allocation behaviour** — tracemalloc guards assert that a warm
   train step performs no steady-state allocations above 1 MB for
   models/workloads sized so the *old* flatten/unflatten/im2col copies
   would blow the budget.
"""

import copy
import hashlib
import pickle
import tracemalloc

import numpy as np
import pytest

from repro.datasets import make_synthetic_mnist, partition_iid, train_test_split
from repro.fl import FederatedSimulation, ParticipationSchedule, VehicleClient
from repro.nn import SGD, Dropout, ParameterArena, Sequential, Workspace, mlp, tiny_cnn
from repro.storage import SignGradientStore
from repro.unlearning import SignRecoveryUnlearner
from repro.unlearning.lbfgs import LbfgsBuffer, compact_form_matrices, compact_hvp
from repro.utils.rng import SeedSequenceTree


def sha(arr: np.ndarray) -> str:
    return hashlib.sha256(np.ascontiguousarray(arr).tobytes()).hexdigest()


# ----------------------------------------------------------------------
# arena + workspace primitives
# ----------------------------------------------------------------------
class TestParameterArena:
    def test_views_alias_flat_buffers(self):
        arena = ParameterArena([(2, 3), (3,)])
        arena.param_views[0][1, 2] = 7.0
        assert arena.w[5] == 7.0
        arena.g[6] = -1.0
        assert arena.grad_views[1][0] == -1.0

    def test_rejects_non_float_dtype(self):
        with pytest.raises(ValueError, match="floating"):
            ParameterArena([(2,)], dtype=np.int64)

    def test_readonly_views(self):
        arena = ParameterArena([(4,)])
        view = arena.readonly_params()
        with pytest.raises(ValueError):
            view[0] = 1.0
        # The underlying buffer stays writable.
        arena.w[0] = 1.0
        assert view[0] == 1.0

    def test_workspace_reuses_buffers(self):
        ws = Workspace()
        a = ws.get("x", (4, 4))
        b = ws.get("x", (4, 4))
        assert a is b
        c = ws.get("x", (2, 2))
        assert c is not a
        assert len(ws) == 2
        assert ws.nbytes == a.nbytes + c.nbytes
        ws.clear()
        assert len(ws) == 0

    def test_workspace_zero_only_on_first_allocation(self):
        ws = Workspace()
        a = ws.get("z", (3,), zero=True)
        assert np.all(a == 0.0)
        a[:] = 5.0
        assert np.all(ws.get("z", (3,), zero=True) == 5.0)

    def test_workspace_drops_buffers_on_copy_and_pickle(self):
        ws = Workspace()
        ws.get("x", (8,))
        assert len(copy.deepcopy(ws)) == 0
        assert len(pickle.loads(pickle.dumps(ws))) == 0


# ----------------------------------------------------------------------
# Sequential aliasing semantics
# ----------------------------------------------------------------------
class TestSequentialArena:
    def _model(self, seed=3):
        return mlp(np.random.default_rng(seed), 6, 3, hidden=4)

    def test_layer_params_are_arena_views(self):
        model = self._model()
        for p, g in zip(model._param_refs(), model._grad_refs()):
            assert p.base is model.arena.w
            assert g.base is model.arena.g

    def test_view_identity_stable_across_set_and_train(self):
        model = self._model()
        refs = [id(p) for p in model._param_refs()]
        rng = np.random.default_rng(0)
        x = rng.normal(size=(5, 6))
        y = rng.integers(0, 3, size=5)
        model.set_flat_params(np.zeros(model.num_params))
        model.loss_and_flat_grad(x, y)
        model.set_flat_params(np.ones(model.num_params) * 0.01)
        model.loss_and_flat_grad(x, y)
        assert [id(p) for p in model._param_refs()] == refs

    def test_set_flat_params_is_visible_through_layer_views(self):
        model = self._model()
        vec = np.arange(model.num_params, dtype=np.float64)
        model.set_flat_params(vec)
        first = model.layers[1]  # Flatten is layer 0
        assert first.weight[0, 0] == 0.0
        assert first.weight.ravel()[-1] == first.weight.size - 1
        # ...and writes through a layer view are visible in the flat vector.
        first.weight[0, 0] = -42.0
        assert model.get_flat_params()[0] == -42.0

    def test_get_flat_params_returns_owned_copy(self):
        model = self._model()
        w = model.get_flat_params()
        w[:] = 99.0
        assert model.get_flat_params()[0] != 99.0

    def test_set_flat_params_wrong_size_raises(self):
        model = self._model()
        with pytest.raises(ValueError, match="elements"):
            model.set_flat_params(np.zeros(model.num_params + 1))

    def test_view_accessors_are_readonly_and_zero_copy(self):
        model = self._model()
        wview = model.get_flat_params_view()
        gview = model.get_flat_grads_view()
        assert wview.base is model.arena.w
        assert gview.base is model.arena.g
        for view in (wview, gview):
            with pytest.raises(ValueError):
                view[0] = 1.0

    def test_loss_and_flat_grad_matches_view_variant(self):
        model = self._model()
        rng = np.random.default_rng(1)
        x = rng.normal(size=(4, 6))
        y = rng.integers(0, 3, size=4)
        loss_a, grad = model.loss_and_flat_grad(x, y)
        loss_b, gview = model.loss_and_flat_grad_view(x, y)
        assert loss_a == loss_b
        assert np.array_equal(grad, gview)
        assert not gview.flags.writeable

    def test_clone_rebuilds_independent_arena(self):
        model = self._model()
        clone = model.clone()
        assert clone.arena.w is not model.arena.w
        assert np.array_equal(clone.get_flat_params(), model.get_flat_params())
        for p in clone._param_refs():
            assert p.base is clone.arena.w
        clone.set_flat_params(np.zeros(clone.num_params))
        assert not np.array_equal(clone.get_flat_params(), model.get_flat_params())

    def test_pickle_roundtrip_rebuilds_arena(self):
        model = self._model()
        rng = np.random.default_rng(5)
        x = rng.normal(size=(3, 6))
        y = rng.integers(0, 3, size=3)
        restored = pickle.loads(pickle.dumps(model))
        assert np.array_equal(
            restored.get_flat_params(), model.get_flat_params()
        )
        for p in restored._param_refs():
            assert p.base is restored.arena.w
        la, _ = model.loss_and_flat_grad(x, y)
        lb, _ = restored.loss_and_flat_grad(x, y)
        assert la == lb

    def test_cnn_workspace_bookkeeping(self):
        cnn = tiny_cnn(np.random.default_rng(2))
        assert cnn.workspace_nbytes() == 0
        rng = np.random.default_rng(0)
        x = rng.normal(size=(2, 1, 12, 12))
        y = rng.integers(0, 4, size=2)
        cnn.loss_and_flat_grad(x, y)
        assert cnn.workspace_nbytes() > 0
        cnn.clear_workspaces()
        assert cnn.workspace_nbytes() == 0


# ----------------------------------------------------------------------
# satellite behaviours
# ----------------------------------------------------------------------
class TestSatellites:
    def test_dropout_rate_zero_is_identity_without_copies(self):
        drop = Dropout(0.0, np.random.default_rng(0))
        x = np.ones((4, 4))
        out = drop.forward(x, training=True)
        assert out is x  # no ones-mask, no x.copy()
        dout = np.full((4, 4), 2.0)
        assert drop.backward(dout) is dout
        with pytest.raises(RuntimeError):
            drop.backward(dout)

    def test_dropout_nonzero_rate_still_masks(self):
        drop = Dropout(0.5, np.random.default_rng(0))
        x = np.ones((64, 64))
        out = drop.forward(x, training=True)
        assert out is not x
        kept = out[out != 0]
        assert np.allclose(kept, 2.0)  # inverted scaling by 1/keep

    def test_predict_proba_preallocated_matches_unbatched(self):
        model = mlp(np.random.default_rng(7), 6, 3, hidden=4)
        x = np.random.default_rng(8).normal(size=(25, 6))
        batched = model.predict_proba(x, batch_size=4)
        whole = model.predict_proba(x, batch_size=100)
        assert batched.shape == whole.shape == (25, 3)
        # Different batch sizes go through different BLAS blockings, so
        # agreement is to rounding, not bitwise.
        np.testing.assert_allclose(batched, whole, rtol=1e-12, atol=1e-15)
        with pytest.raises(ValueError, match="empty"):
            model.predict_proba(x[:0])

    def test_evaluate_loss_batching(self):
        model = mlp(np.random.default_rng(7), 6, 3, hidden=4)
        rng = np.random.default_rng(8)
        x = rng.normal(size=(25, 6))
        y = rng.integers(0, 3, size=25)
        assert model.evaluate_loss(x, y, batch_size=4) == pytest.approx(
            model.evaluate_loss(x, y, batch_size=100)
        )
        with pytest.raises(ValueError, match="empty"):
            model.evaluate_loss(x[:0], y[:0])

    def test_sgd_step_inplace_matches_functional(self):
        rng = np.random.default_rng(11)
        for momentum, wd in [(0.0, 0.0), (0.9, 0.0), (0.0, 1e-2), (0.5, 1e-3)]:
            a = SGD(0.05, momentum=momentum, weight_decay=wd)
            b = SGD(0.05, momentum=momentum, weight_decay=wd)
            params_a = rng.normal(size=40)
            params_b = params_a.copy()
            for _ in range(4):
                grad = rng.normal(size=40)
                params_a = a.step(params_a, grad)
                grad_before = grad.copy()
                ret = b.step_(params_b, grad)
                assert ret is params_b
                assert np.array_equal(grad, grad_before)  # grad untouched
                assert np.array_equal(params_a, params_b)

    def test_sgd_step_inplace_validates(self):
        opt = SGD(0.1)
        with pytest.raises(ValueError, match="mismatch"):
            opt.step_(np.zeros(3), np.zeros(4))
        frozen = np.zeros(3)
        frozen.flags.writeable = False
        with pytest.raises(ValueError, match="writable"):
            opt.step_(frozen, np.zeros(3))

    def test_lbfgs_compact_form_cache_invalidation(self):
        rng = np.random.default_rng(13)
        buf = LbfgsBuffer(buffer_size=3)
        for _ in range(2):
            dw = rng.normal(size=30)
            buf.add_pair(dw, dw + 0.1 * rng.normal(size=30))
        v = rng.normal(size=30)
        first = buf.hvp(v)
        assert buf._form is not None
        cached = buf._form
        assert np.array_equal(buf.hvp(v), first)
        assert buf._form is cached  # second product reused the form
        dw = rng.normal(size=30)
        buf.add_pair(dw, dw + 0.1 * rng.normal(size=30))
        assert buf._form is None  # invalidated
        after = buf.hvp(v)
        assert not np.array_equal(after, first)
        buf.clear()
        assert buf._form is None
        assert np.array_equal(buf.hvp(v), np.zeros_like(v))

    def test_compact_hvp_precomputed_matches_from_scratch(self):
        rng = np.random.default_rng(17)
        dw = rng.normal(size=(20, 2))
        dg = dw + 0.05 * rng.normal(size=(20, 2))
        sigma = 1.3
        v = rng.normal(size=20)
        middle, wing = compact_form_matrices(dw, dg, sigma)
        assert np.array_equal(
            compact_hvp(dw, dg, sigma, v),
            compact_hvp(dw, dg, sigma, v, middle=middle, wing=wing),
        )

    def test_float32_policy_smoke(self):
        model = mlp(np.random.default_rng(23), 6, 3, hidden=4, dtype="float32")
        assert model.arena.w.dtype == np.float32
        rng = np.random.default_rng(0)
        x = rng.normal(size=(5, 6))
        y = rng.integers(0, 3, size=5)
        loss, grad = model.loss_and_flat_grad(x, y)
        # Boundary contract: flat vectors crossing the model are float64.
        assert grad.dtype == np.float64
        assert model.get_flat_params().dtype == np.float64
        ref = mlp(np.random.default_rng(23), 6, 3, hidden=4)
        loss64, grad64 = ref.loss_and_flat_grad(x, y)
        assert loss == pytest.approx(loss64, rel=1e-4)
        np.testing.assert_allclose(grad, grad64, rtol=1e-3, atol=1e-5)
        # Same random draws either way: float32 init is the cast of float64's.
        assert np.array_equal(
            model.get_flat_params(),
            ref.get_flat_params().astype(np.float32).astype(np.float64),
        )

    def test_sequential_rejects_other_dtypes(self):
        with pytest.raises(ValueError, match="float64 or float32"):
            mlp(np.random.default_rng(0), 4, 2, dtype="float16")


# ----------------------------------------------------------------------
# bitwise golden equivalence vs the pre-arena implementation
# ----------------------------------------------------------------------
GOLDEN_FINAL_PARAMS = "088f1b3ac91ff38a770787c10511f86a330e49d72ff7b6c361dee7b4c16e043d"
GOLDEN_ACCURACY = [0.066666666667, 0.083333333333, 0.083333333333]
GOLDEN_CHECKPOINTS = "97ec5b46630b9e306bfc80eb54737e02076dacb9c99fac6135caed5f1b076c2c"
GOLDEN_RECOVERED = "d9794241d03b376e7a315454194088bfccdae590d595ba9912363f7a860834c3"

GOLDEN_CNN_W0 = "babd10f2ff4e997d3309c996dd7ec45f9dc1200edb6589ecc1f04fd66d5f390f"
GOLDEN_CNN_LOSS = 2.4234254925390237
GOLDEN_CNN_GRAD = "006bc6e5e34e21b3bf33127443f2c6074a6321b8a432d80eca054196aff2e9c6"
GOLDEN_CNN_LOSS2 = 2.62931824182229
GOLDEN_CNN_GRAD2 = "16872a9fbabf51c9c3012c67fef1ad8347d758811963e87bb2bbf3d37b95e003"


class TestGoldenEquivalence:
    """The arena refactor must be bitwise-invisible at default float64."""

    def test_federated_run_and_recovery_match_pre_arena_golden(self):
        SEED, NUM_CLIENTS, NUM_ROUNDS, IMAGE = 424242, 4, 6, 8
        tree = SeedSequenceTree(SEED)
        data = make_synthetic_mnist(240, tree.rng("data"), image_size=IMAGE)
        train, test = train_test_split(data, 0.25, tree.rng("split"))
        shards = partition_iid(train, NUM_CLIENTS, tree.rng("part"))
        clients = [
            VehicleClient(i, shards[i], tree.rng(f"c{i}"), batch_size=16)
            for i in range(NUM_CLIENTS)
        ]
        model = mlp(tree.rng("model"), IMAGE * IMAGE, 10, hidden=12)
        schedule = ParticipationSchedule.with_events(
            range(NUM_CLIENTS), joins={1: 2}
        )
        sim = FederatedSimulation(
            model,
            clients,
            2e-3,
            schedule=schedule,
            gradient_store=SignGradientStore(),
            test_set=test,
            eval_every=2,
        )
        record = sim.run(NUM_ROUNDS)
        assert sha(record.params_at(NUM_ROUNDS)) == GOLDEN_FINAL_PARAMS
        assert [round(a, 12) for a in record.accuracy_history] == GOLDEN_ACCURACY
        digest = hashlib.sha256()
        for t in range(NUM_ROUNDS + 1):
            digest.update(np.ascontiguousarray(record.params_at(t)).tobytes())
        assert digest.hexdigest() == GOLDEN_CHECKPOINTS

        result = SignRecoveryUnlearner(refresh_period=2).unlearn(record, [1], model)
        assert sha(result.params) == GOLDEN_RECOVERED
        assert result.rounds_replayed == 4
        assert result.stats["forget_round"] == 2

    def test_cnn_train_step_matches_pre_arena_golden(self):
        rng = np.random.default_rng(777)
        cnn = tiny_cnn(rng, image_size=12, channels=1, num_classes=4)
        x = rng.normal(size=(8, 1, 12, 12))
        y = rng.integers(0, 4, size=8)
        w0 = cnn.get_flat_params()
        assert sha(w0) == GOLDEN_CNN_W0
        loss, grad = cnn.loss_and_flat_grad(x, y)
        assert float(loss) == GOLDEN_CNN_LOSS
        assert sha(grad) == GOLDEN_CNN_GRAD
        cnn.set_flat_params(w0 - 0.05 * grad)
        loss2, grad2 = cnn.loss_and_flat_grad(x, y)
        assert float(loss2) == GOLDEN_CNN_LOSS2
        assert sha(grad2) == GOLDEN_CNN_GRAD2


# ----------------------------------------------------------------------
# allocation guards
# ----------------------------------------------------------------------
_MB = 1024 * 1024


def _warm_step_peak(model, x, y, opt):
    """Peak tracemalloc delta of one fully-warm train step."""

    def step():
        _, gview = model.loss_and_flat_grad_view(x, y)
        opt.step_(model.arena.w, gview)

    for _ in range(3):  # warm caches: workspaces, optimizer scratch
        step()
    tracemalloc.start()
    try:
        tracemalloc.reset_peak()
        before, _ = tracemalloc.get_traced_memory()
        step()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak - before


class TestAllocationGuards:
    def test_mlp_warm_step_allocates_under_1mb(self):
        # d = 20000*16 + ... ≈ 320k params → flat vector ≈ 2.56 MB.  The
        # pre-arena step materialized several of those per step; the
        # arena step's transients (activations, batch 4) are tiny.
        model = mlp(np.random.default_rng(0), 20000, 10, hidden=16)
        assert model.num_params * 8 > 2 * _MB
        rng = np.random.default_rng(1)
        x = rng.normal(size=(4, 20000))
        y = rng.integers(0, 10, size=4)
        peak = _warm_step_peak(model, x, y, SGD(0.01))
        assert peak < _MB, f"warm MLP step allocated {peak / _MB:.2f} MB"

    def test_cnn_warm_step_allocates_under_1mb(self):
        # im2col patch buffers for 16×(1→4)×32² exceed 1 MB and must be
        # held by the workspace, not reallocated per step.
        model = tiny_cnn(np.random.default_rng(0), image_size=32, channels=1)
        rng = np.random.default_rng(1)
        x = rng.normal(size=(16, 1, 32, 32))
        y = rng.integers(0, 4, size=16)
        opt = SGD(0.01)
        peak = _warm_step_peak(model, x, y, opt)
        assert model.workspace_nbytes() > _MB  # the big buffers are cached
        assert peak < _MB, f"warm CNN step allocated {peak / _MB:.2f} MB"
