"""Tests for the high-level UnlearningService façade."""

import numpy as np
import pytest

from repro.fl import with_sign_store
from repro.unlearning import UnlearningService


@pytest.fixture
def service(small_fl):
    # Fresh sign-store view per test (the service purges records).
    sign_record = with_sign_store(small_fl["record"], delta=1e-6)
    return UnlearningService(
        record=sign_record, model=small_fl["model"], clip_threshold=5.0
    )


class TestErasureRequest:
    def test_erases_and_purges(self, service):
        outcome = service.handle_erasure_request(5)
        assert outcome.forgotten == [5]
        assert outcome.purged_records > 0
        assert outcome.result.client_gradient_calls == 0
        assert np.isfinite(outcome.params).all()
        # The store holds nothing of the client anymore.
        assert all(
            5 not in service.record.gradients.clients_at(t)
            for t in service.record.gradients.rounds()
        )

    def test_double_erasure_rejected(self, service):
        service.handle_erasure_request(5)
        with pytest.raises(ValueError):
            service.handle_erasure_request(5)

    def test_bookkeeping(self, service):
        service.handle_erasure_request(5)
        assert service.erased_clients == [5]
        assert 5 not in service.active_clients()

    def test_departed_vehicle_same_path(self, service):
        outcome = service.handle_departed_vehicle(4)
        assert outcome.forgotten == [4]


class TestAttackerScan:
    def test_clean_record_flags_nothing(self, service):
        assert service.scan_and_purge_attackers() is None

    def test_storage_bytes_shrink_after_erasure(self, service):
        before = service.storage_bytes()["gradients"]
        service.handle_erasure_request(5)
        assert service.storage_bytes()["gradients"] < before


class TestPersistence:
    def test_persist_and_restore_round_trip(self, service, small_fl, tmp_path):
        service.handle_erasure_request(5)
        service.persist(str(tmp_path / "svc"))
        restored = UnlearningService.restore(
            str(tmp_path / "svc"), small_fl["model"], clip_threshold=5.0
        )
        # The purge survived the round trip.
        assert all(
            5 not in restored.record.gradients.clients_at(t)
            for t in restored.record.gradients.rounds()
        )
        # And the restored service can erase someone else.
        outcome = restored.handle_erasure_request(4)
        assert np.isfinite(outcome.params).all()
