"""Sustained-load scenario against the erasure daemon (``slow`` marker).

A scaled-down version of the ``make bench-slo`` story that still runs
real wall-clock load: a steady phase that must be served cleanly, a
mass-GDPR burst that must shed (bounded queue, typed rejections, no
crash), and a recovery phase that must be clean again.  Tier-1 stays
fast because the marker keeps it out of the default selection — run
with ``pytest -m slow``.
"""

import pytest

from repro.datasets import make_synthetic_mnist, partition_iid
from repro.fl import FederatedSimulation, ParticipationSchedule, VehicleClient
from repro.nn import mlp
from repro.serving import (
    ErasureDaemon,
    LoadGenerator,
    mass_gdpr_schedule,
    steady_schedule,
)
from repro.storage import SignGradientStore
from repro.unlearning import UnlearningService
from repro.utils.rng import SeedSequenceTree

NUM_CLIENTS = 16
NUM_ROUNDS = 10
IMAGE = 8
CLIP = 5.0
ERASABLE = list(range(4, NUM_CLIENTS))
JOINS = {cid: 2 + (i % 7) for i, cid in enumerate(ERASABLE)}


def build_service(seed=11):
    tree = SeedSequenceTree(seed)
    data = make_synthetic_mnist(200, tree.rng("data"), image_size=IMAGE)
    shards = partition_iid(data, NUM_CLIENTS, tree.rng("part"))
    clients = [
        VehicleClient(i, shards[i], tree.rng(f"c{i}"), batch_size=16)
        for i in range(NUM_CLIENTS)
    ]
    model = mlp(tree.rng("model"), IMAGE * IMAGE, 10, hidden=8)
    schedule = ParticipationSchedule.with_events(range(NUM_CLIENTS), joins=JOINS)
    sim = FederatedSimulation(
        model, clients, 2e-3, schedule=schedule,
        gradient_store=SignGradientStore(),
    )
    record = sim.run(NUM_ROUNDS)
    return UnlearningService(record=record, model=model, clip_threshold=CLIP)


@pytest.mark.slow
def test_daemon_survives_burst_and_recovers():
    service = build_service()
    daemon = ErasureDaemon(service, capacity=3, workers=2).start()
    generator = LoadGenerator(daemon)
    try:
        steady = generator.run(
            steady_schedule(
                150.0, 0.5, ERASABLE[:2], seed=11,
                duplicate_fraction=0.9, key_prefix="steady",
            ),
            label="steady",
        )
        burst = generator.run(
            mass_gdpr_schedule(
                40.0, 0.5, 10, ERASABLE[2:10], seed=12, key_prefix="burst",
            ),
            label="burst",
        )
        recover = generator.run(
            steady_schedule(
                150.0, 0.5, ERASABLE[10:], seed=13,
                duplicate_fraction=0.9, key_prefix="recover",
            ),
            label="recover",
        )
    finally:
        daemon.stop(mode="drain")

    # Steady traffic is served without shedding or failures.
    assert steady.counts.get("ok", 0) > 0
    assert steady.counts.get("error", 0) == 0
    assert steady.shed_rate == 0.0

    # The burst overwhelms a capacity-3 queue: admission control sheds
    # the excess instead of queueing without bound, and nothing crashes.
    assert burst.shed_rate > 0.0
    assert burst.counts.get("rejected", 0) > 0
    assert burst.counts.get("error", 0) == 0

    # After the burst the daemon is healthy again.
    assert recover.shed_rate == 0.0
    assert recover.counts.get("error", 0) == 0
    status = daemon.status()
    assert status["queue_depth"] == 0
    assert status["breaker_state"] == "closed"
