"""Tests for history-based malicious-client detection."""

import numpy as np
import pytest

from repro.attacks import LabelFlipAttack
from repro.datasets import make_synthetic_mnist, partition_iid, train_test_split
from repro.defenses import (
    DetectionReport,
    client_prediction_inconsistency,
    client_suspicion_scores,
    detect_malicious_clients,
)
from repro.defenses.detection import _two_means_split
from repro.fl import FederatedSimulation, ParticipationSchedule, VehicleClient, with_sign_store
from repro.nn import mlp
from repro.storage import FullGradientStore
from repro.utils.rng import SeedSequenceTree


def _make_fl(seed: int, malicious):
    """8-client, 100-round run; the detection signal needs this scale
    (shorter/noisier runs drown the per-round majority statistic in
    SGD noise — validated across seeds during calibration)."""
    tree = SeedSequenceTree(seed)
    data = make_synthetic_mnist(1200, tree.rng("data"), image_size=16)
    train, _test = train_test_split(data, 0.2, tree.rng("split"))
    shards = partition_iid(train, 8, tree.rng("part"))
    attack = LabelFlipAttack(oversample=8)
    for cid in malicious:
        shards[cid] = attack.poison(shards[cid])
    clients = [
        VehicleClient(i, shards[i], tree.rng(f"c{i}"), batch_size=64) for i in range(8)
    ]
    model = mlp(tree.rng("model"), 16 * 16, 10, hidden=24)
    sim = FederatedSimulation(
        model, clients, learning_rate=1e-3,
        schedule=ParticipationSchedule.with_events(
            range(8), joins={c: 2 for c in malicious}
        ),
        gradient_store=FullGradientStore(),
    )
    return sim.run(100)


@pytest.fixture(scope="module")
def poisoned_fl():
    """Run where clients 1 and 4 label-flip with oversampling."""
    malicious = [1, 4]
    return _make_fl(31, malicious), malicious


@pytest.fixture(scope="module")
def clean_fl():
    return _make_fl(33, [])


class TestTwoMeans:
    def test_clear_split(self):
        values = np.array([0.1, 0.11, 0.12, 0.9, 0.95])
        boundary = _two_means_split(values)
        assert 0.12 < boundary < 0.9

    def test_identical_values_flag_nothing(self):
        values = np.full(5, 0.3)
        assert _two_means_split(values) > 0.3


class TestSuspicionScores:
    def test_malicious_score_highest(self, poisoned_fl):
        record, malicious = poisoned_fl
        scores, rounds = client_suspicion_scores(record)
        assert rounds > 0
        ranked = sorted(scores, key=scores.get, reverse=True)
        assert set(ranked[:2]) == set(malicious)

    def test_works_on_sign_store(self, poisoned_fl):
        """Detection must function under the paper's 2-bit storage."""
        record, malicious = poisoned_fl
        sign_record = with_sign_store(record, delta=1e-6)
        scores, _ = client_suspicion_scores(sign_record)
        ranked = sorted(scores, key=scores.get, reverse=True)
        assert set(ranked[:2]) == set(malicious)

    def test_all_clients_scored(self, poisoned_fl):
        record, _ = poisoned_fl
        scores, _ = client_suspicion_scores(record)
        assert set(scores) == set(record.ledger.known_clients())

    def test_min_participants_validation(self, poisoned_fl):
        with pytest.raises(ValueError):
            client_suspicion_scores(poisoned_fl[0], min_participants=1)


class TestDetect:
    def test_flags_exactly_the_attackers(self, poisoned_fl):
        record, malicious = poisoned_fl
        report = detect_malicious_clients(record)
        assert report.flagged == sorted(malicious)
        precision, recall = report.precision_recall(malicious)
        assert precision == 1.0 and recall == 1.0

    def test_clean_run_flags_nobody(self, clean_fl):
        report = detect_malicious_clients(clean_fl)
        assert report.flagged == []

    def test_report_structure(self, poisoned_fl):
        record, _ = poisoned_fl
        report = detect_malicious_clients(record)
        assert isinstance(report, DetectionReport)
        assert report.rounds_used > 0
        assert "score_mean" in report.details

    def test_precision_recall_empty_flagged(self):
        report = DetectionReport(scores={}, flagged=[], threshold=1.0, rounds_used=0)
        assert report.precision_recall([1]) == (0.0, 0.0)
        assert report.precision_recall([]) == (1.0, 1.0)


class TestPredictionInconsistency:
    def test_returns_all_clients(self, poisoned_fl):
        record, _ = poisoned_fl
        scores = client_prediction_inconsistency(record)
        assert set(scores) == set(record.ledger.known_clients())
        assert all(np.isfinite(v) for v in scores.values())
