"""Tests for the round-major mmap sign layout.

The contract under test: every read surface of
:class:`MmapSignGradientStore` is bitwise identical to the dict-backed
:class:`SignGradientStore` it was built from — including after a
process "restart" (re-``open`` of the directory) and after tombstoned
drops.
"""

import os

import numpy as np
import pytest

from repro.fl.history import with_sign_store
from repro.fl.persistence import load_record, save_record, store_to_arrays
from repro.storage import MmapSignGradientStore, SignGradientStore


@pytest.fixture
def sign_store(rng):
    store = SignGradientStore(delta=1e-6)
    # rounds of different cohort sizes, incl. a round with one client
    for t in range(4):
        store.put_round(
            t, {c: rng.normal(size=57) * 1e-3 for c in range(t % 3 + 1, 5)}
        )
    store.put(4, 2, rng.normal(size=57))
    return store


@pytest.fixture
def mmap_store(sign_store, tmp_path):
    return MmapSignGradientStore.from_store(sign_store, str(tmp_path / "layout"))


def _assert_same_view(dict_store, mm):
    assert mm.rounds() == dict_store.rounds()
    assert mm.nbytes() == dict_store.nbytes()
    for t in dict_store.rounds():
        assert mm.clients_at(t) == dict_store.clients_at(t)
        bulk = mm.get_round(t)
        reference = dict_store.get_round(t)
        assert sorted(bulk) == sorted(reference)
        for cid in reference:
            np.testing.assert_array_equal(bulk[cid], reference[cid])
            np.testing.assert_array_equal(mm.get(t, cid), dict_store.get(t, cid))


class TestFromStore:
    def test_bitwise_identical_to_dict_store(self, sign_store, mmap_store):
        _assert_same_view(sign_store, mmap_store)

    def test_delta_carried(self, sign_store, mmap_store):
        assert mmap_store.delta == sign_store.delta

    def test_items_match(self, sign_store, mmap_store):
        dict_items = sign_store.items()
        mmap_items = mmap_store.items()
        assert len(dict_items) == len(mmap_items)
        for (dk, (dp, dl)), (mk, (mp, ml)) in zip(dict_items, mmap_items):
            assert dk == mk and dl == ml
            np.testing.assert_array_equal(np.asarray(mp), dp)

    def test_empty_store(self, tmp_path):
        mm = MmapSignGradientStore.from_store(
            SignGradientStore(), str(tmp_path / "empty")
        )
        assert mm.rounds() == []
        assert mm.nbytes() == 0
        assert mm.get_round(0) == {}

    def test_sharding_splits_rounds(self, sign_store, tmp_path):
        directory = str(tmp_path / "sharded")
        mm = MmapSignGradientStore.from_store(sign_store, directory, shard_bytes=32)
        shards = [f for f in os.listdir(directory) if f.startswith("shard_")]
        assert len(shards) > 1
        _assert_same_view(sign_store, mm)

    def test_heterogeneous_lengths(self, rng, tmp_path):
        store = SignGradientStore()
        store.put(0, 0, rng.normal(size=8))
        store.put(0, 1, rng.normal(size=12))
        mm = MmapSignGradientStore.from_store(store, str(tmp_path / "het"))
        _assert_same_view(store, mm)

    def test_rejects_full_store(self, tmp_path):
        from repro.storage import FullGradientStore

        with pytest.raises(TypeError):
            MmapSignGradientStore.from_store(
                FullGradientStore(), str(tmp_path / "x")
            )

    def test_direct_construction_raises(self):
        with pytest.raises(TypeError):
            MmapSignGradientStore()


class TestOpen:
    def test_survives_restart(self, sign_store, mmap_store):
        reopened = MmapSignGradientStore.open(mmap_store.directory)
        _assert_same_view(sign_store, reopened)

    def test_missing_manifest_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            MmapSignGradientStore.open(str(tmp_path))

    def test_missing_shard_raises(self, mmap_store):
        for name in os.listdir(mmap_store.directory):
            if name.startswith("shard_"):
                os.unlink(os.path.join(mmap_store.directory, name))
        with pytest.raises(ValueError, match="missing"):
            MmapSignGradientStore.open(mmap_store.directory)

    def test_truncated_shard_raises(self, mmap_store):
        for name in os.listdir(mmap_store.directory):
            if name.startswith("shard_"):
                path = os.path.join(mmap_store.directory, name)
                with open(path, "r+b") as fh:
                    fh.truncate(max(os.path.getsize(path) - 8, 1))
        with pytest.raises(ValueError, match="past shard end"):
            MmapSignGradientStore.open(mmap_store.directory)


class TestReadOnly:
    def test_put_raises(self, mmap_store):
        with pytest.raises(NotImplementedError):
            mmap_store.put(0, 0, np.zeros(4))

    def test_put_round_raises(self, mmap_store):
        with pytest.raises(NotImplementedError):
            mmap_store.put_round(0, {0: np.zeros(4)})


class TestTombstones:
    def test_drop_client_is_logical(self, sign_store, mmap_store):
        expected = sign_store.drop_client(2)
        assert mmap_store.drop_client(2) == expected
        _assert_same_view(sign_store, mmap_store)
        assert not mmap_store.has(4, 2)
        with pytest.raises(KeyError):
            mmap_store.get(4, 2)

    def test_drop_survives_restart(self, sign_store, mmap_store):
        sign_store.drop_client(3)
        mmap_store.drop_client(3)
        reopened = MmapSignGradientStore.open(mmap_store.directory)
        _assert_same_view(sign_store, reopened)

    def test_double_drop_returns_zero(self, mmap_store):
        assert mmap_store.drop_client(1) > 0
        assert mmap_store.drop_client(1) == 0

    def test_drop_unknown_client(self, mmap_store):
        assert mmap_store.drop_client(999) == 0


class TestNbytesAccounting:
    def test_cached_nbytes_matches_oracle(self, sign_store, mmap_store):
        assert mmap_store.nbytes() == mmap_store.recount_nbytes()
        assert mmap_store.nbytes() == sign_store.nbytes()

    def test_drop_shrinks_nbytes_but_not_disk(self, sign_store, mmap_store):
        disk_before = mmap_store.disk_bytes()
        sign_store.drop_client(2)
        mmap_store.drop_client(2)
        # logical bytes shrink in lockstep with the dict store and the
        # oracle; physical shard bytes only shrink at compact()
        assert mmap_store.nbytes() == sign_store.nbytes()
        assert mmap_store.nbytes() == mmap_store.recount_nbytes()
        assert mmap_store.disk_bytes() == disk_before

    def test_nbytes_cache_survives_restart(self, sign_store, mmap_store):
        sign_store.drop_client(3)
        mmap_store.drop_client(3)
        reopened = MmapSignGradientStore.open(mmap_store.directory)
        assert reopened.nbytes() == reopened.recount_nbytes() == sign_store.nbytes()


class TestCompact:
    def test_compact_reclaims_disk_bytes(self, sign_store, mmap_store):
        sign_store.drop_client(2)
        mmap_store.drop_client(2)
        disk_before = mmap_store.disk_bytes()
        stats = mmap_store.compact()
        assert stats["removed_rows"] > 0
        assert stats["reclaimed_bytes"] > 0
        assert mmap_store.disk_bytes() < disk_before
        assert mmap_store.nbytes() == mmap_store.recount_nbytes()
        _assert_same_view(sign_store, mmap_store)

    def test_compact_preserves_reads_and_restart(self, sign_store, mmap_store):
        sign_store.drop_client(1)
        mmap_store.drop_client(1)
        mmap_store.compact()
        _assert_same_view(sign_store, mmap_store)
        reopened = MmapSignGradientStore.open(mmap_store.directory)
        _assert_same_view(sign_store, reopened)

    def test_compact_without_tombstones_is_lossless(self, sign_store, mmap_store):
        stats = mmap_store.compact()
        assert stats["removed_rows"] == 0
        _assert_same_view(sign_store, mmap_store)

    def test_repeated_compact_converges(self, sign_store, mmap_store):
        sign_store.drop_client(2)
        mmap_store.drop_client(2)
        mmap_store.compact()
        stats = mmap_store.compact()
        assert stats["removed_rows"] == 0
        assert stats["reclaimed_bytes"] == 0
        _assert_same_view(sign_store, mmap_store)

    def test_compact_drops_fully_tombstoned_rounds(self, mmap_store):
        mmap_store.drop_client(2)  # round 4's only client
        mmap_store.compact()
        assert 4 not in mmap_store.rounds()
        assert mmap_store.get_round(4) == {}

    def test_compact_respects_shard_bytes(self, sign_store, tmp_path):
        directory = str(tmp_path / "resharded")
        mm = MmapSignGradientStore.from_store(sign_store, directory)
        mm.compact(shard_bytes=32)
        shards = [f for f in os.listdir(directory) if f.startswith("shard_")]
        assert len(shards) > 1
        _assert_same_view(sign_store, mm)


class TestGetRoundSemantics:
    def test_missing_round_is_empty(self, mmap_store):
        assert mmap_store.get_round(99) == {}

    def test_fully_tombstoned_round_is_empty(self, mmap_store):
        mmap_store.drop_client(2)
        assert mmap_store.get_round(4) == {}
        assert 4 not in mmap_store.rounds()


class TestPersistenceIntegration:
    def test_store_to_arrays_emits_sign_kind(self, sign_store, mmap_store):
        kind, arrays, lengths, delta = store_to_arrays(mmap_store)
        ref_kind, ref_arrays, ref_lengths, ref_delta = store_to_arrays(sign_store)
        assert kind == ref_kind == "sign"
        assert delta == ref_delta
        assert lengths == ref_lengths
        assert set(arrays) == set(ref_arrays)
        for name in arrays:
            np.testing.assert_array_equal(arrays[name], ref_arrays[name])

    def test_record_round_trip(self, small_fl, tmp_path):
        mmap_record = with_sign_store(
            small_fl["record"], backend="mmap", directory=str(tmp_path / "layout")
        )
        save_record(mmap_record, str(tmp_path / "saved"))
        loaded = load_record(str(tmp_path / "saved"))
        _assert_same_view(loaded.gradients, mmap_record.gradients)


class TestWithSignStoreBackend:
    def test_mmap_backend_matches_dict(self, small_fl, tmp_path):
        dict_record = with_sign_store(small_fl["record"], backend="dict")
        mmap_record = with_sign_store(
            small_fl["record"], backend="mmap", directory=str(tmp_path / "layout")
        )
        assert isinstance(mmap_record.gradients, MmapSignGradientStore)
        _assert_same_view(dict_record.gradients, mmap_record.gradients)

    def test_default_backend_policy(self, small_fl):
        import shutil

        from repro.storage import set_default_sign_backend

        previous = set_default_sign_backend("mmap")
        record = None
        try:
            record = with_sign_store(small_fl["record"])
            assert isinstance(record.gradients, MmapSignGradientStore)
        finally:
            set_default_sign_backend(previous)
            if record is not None:
                shutil.rmtree(record.gradients.directory, ignore_errors=True)

    def test_unknown_backend_raises(self, small_fl):
        with pytest.raises(ValueError):
            with_sign_store(small_fl["record"], backend="sqlite")
