"""Chaos scenarios for the snapshot-isolated live-traffic path.

An erasure that committed into a *live* training session must survive
the same faults the offline pipeline does:

- **crash**: the server is killed rounds after a live erasure commits;
  resuming from the journal must reproduce the uninterrupted run
  bitwise — merged params, overwritten checkpoint, purged store, and
  the exclusion all travel through the journal, so the forgotten
  vehicle is never resurrected;
- **churn**: vehicles join and leave around the erasure; the commit
  stays byte-identical to the sequential reference and unrelated churn
  is untouched.

Seeds come from the ``CHAOS_SEEDS`` environment variable, same as
``test_chaos.py``.
"""

import os

import numpy as np
import pytest

from repro.datasets import make_synthetic_mnist, partition_iid
from repro.faults import FaultPlan, ServerKilledError
from repro.fl import (
    FederatedSimulation,
    LiveTrainingSession,
    ParticipationSchedule,
    RoundJournal,
    VehicleClient,
)
from repro.nn import mlp
from repro.storage import SignGradientStore
from repro.unlearning import SignRecoveryUnlearner, UnlearningService
from repro.utils.rng import SeedSequenceTree

pytestmark = pytest.mark.chaos

CHAOS_SEEDS = [int(s) for s in os.environ.get("CHAOS_SEEDS", "7").split(",")]

NUM_ROUNDS = 8
NUM_CLIENTS = 5
IMAGE = 8
FEATURES = IMAGE * IMAGE
#: The live erasure lands once this many rounds have committed.
ERASE_AT = 4
TARGET = 3


def build_sim(seed, **kwargs):
    """A tiny but real FL setup, rebuilt identically from its seed."""
    tree = SeedSequenceTree(seed)
    data = make_synthetic_mnist(200, tree.rng("data"), image_size=IMAGE)
    shards = partition_iid(data, NUM_CLIENTS, tree.rng("part"))
    clients = [
        VehicleClient(i, shards[i], tree.rng(f"c{i}"), batch_size=16)
        for i in range(NUM_CLIENTS)
    ]
    model = mlp(tree.rng("model"), FEATURES, 10, hidden=8)
    return model, FederatedSimulation(
        model, clients, 2e-3, gradient_store=SignGradientStore(), **kwargs
    )


def run_live_erasure(seed, journal=None, expect_kill=None, **sim_kwargs):
    """Drive one paced live session: train to ``ERASE_AT``, erase
    ``TARGET``, then free-run to the end (or into the scheduled kill).

    Returns ``(record, outcome)``; ``record`` is ``None`` when
    ``expect_kill`` consumed the run.
    """
    model, sim = build_sim(seed, **sim_kwargs)
    session = LiveTrainingSession(sim, NUM_ROUNDS, paced=True, journal=journal)
    service = UnlearningService(
        record=sim.record_view(0),
        model=model,
        clip_threshold=5.0,
        prefetch_depth=0,
    ).bind_live(session)
    session.start()
    try:
        # One permit per observed advance: a journal resume publishes
        # all restored rounds on its first permit, so a bulk grant
        # would let training run past the intended erase point.
        while session.watermark < ERASE_AT:
            before = session.watermark
            session.allow_rounds(1)
            assert session.wait_for_round(before + 1, timeout=120)
        assert session.watermark == ERASE_AT
        outcome = service.handle_erasure_request(TARGET)
    finally:
        session.release_pacing()
    if expect_kill is not None:
        with pytest.raises(ServerKilledError) as err:
            session.result(timeout=120)
        assert err.value.round_index == expect_kill
        return None, outcome
    return session.result(timeout=120), outcome


def assert_no_resurrection(record, outcome, target=TARGET):
    """Membership and storage both honour the commit forever after."""
    for t in range(outcome.commit_round, record.num_rounds):
        assert target not in record.ledger.participants_at(t)
    for t in range(record.num_rounds):
        assert not record.gradients.has(t, target)
    assert target in record.metadata.get("erased_clients", [])


def assert_records_equal(a, b):
    """Bitwise equality of two training records (params + history)."""
    np.testing.assert_array_equal(a.final_params(), b.final_params())
    for t in range(a.num_rounds + 1):
        np.testing.assert_array_equal(a.params_at(t), b.params_at(t))
    assert a.ledger.to_dict() == b.ledger.to_dict()
    assert a.client_sizes == b.client_sizes
    items_a, items_b = a.gradients.items(), b.gradients.items()
    assert [k for k, _ in items_a] == [k for k, _ in items_b]
    for (_, pa), (_, pb) in zip(items_a, items_b):
        if isinstance(pa, tuple):  # sign store: (packed bytes, length)
            np.testing.assert_array_equal(pa[0], pb[0])
            assert pa[1] == pb[1]
        else:
            np.testing.assert_array_equal(pa, pb)


# ----------------------------------------------------------------------
# erasure, then crash
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", CHAOS_SEEDS)
def test_live_erasure_survives_server_crash(seed, tmp_path):
    """Kill the trainer after a live erasure committed; the journal
    resume must reproduce the uninterrupted (erased) run bitwise and
    must not resurrect the forgotten vehicle."""
    reference, ref_outcome = run_live_erasure(seed)
    assert ref_outcome.snapshot_watermark == ERASE_AT
    assert ref_outcome.commit_round == ERASE_AT  # no permits: empty tail
    assert ref_outcome.merge_mode == "replay"

    kill_at = ERASE_AT + 1
    journal = RoundJournal(str(tmp_path / "j"))
    _, outcome = run_live_erasure(
        seed,
        journal=journal,
        expect_kill=kill_at,
        fault_plan=FaultPlan(server_kills={kill_at}),
    )
    # The erasure committed (and was journaled) before the kill.
    assert outcome.commit_round == ref_outcome.commit_round
    assert outcome.params.tobytes() == ref_outcome.params.tobytes()

    _, survivor = build_sim(seed)
    resumed = survivor.run(NUM_ROUNDS, journal=journal)
    # Metadata does not travel through the journal; graft the erasure
    # bookkeeping so the no-resurrection check can read it uniformly.
    resumed.metadata.setdefault("erased_clients", [TARGET])
    assert_records_equal(resumed, reference)
    assert_no_resurrection(resumed, outcome)
    assert_no_resurrection(reference, ref_outcome)


@pytest.mark.parametrize("seed", CHAOS_SEEDS)
def test_crash_before_the_erasure_loses_nothing_but_the_erasure(seed, tmp_path):
    """A kill *before* any erasure leaves a journal an erasure-free
    resume completes; the erasure then applies cleanly to the resumed
    live session — crash recovery and live erasure compose."""
    kill_at = 2
    journal = RoundJournal(str(tmp_path / "j"))
    model, victim = build_sim(seed, fault_plan=FaultPlan(server_kills={kill_at}))
    session = LiveTrainingSession(victim, NUM_ROUNDS, journal=journal)
    session.start()
    with pytest.raises(ServerKilledError):
        session.result(timeout=120)

    resumed_record, outcome = run_live_erasure(seed, journal=journal)
    reference, ref_outcome = run_live_erasure(seed)
    assert outcome.params.tobytes() == ref_outcome.params.tobytes()
    assert_records_equal(resumed_record, reference)
    assert_no_resurrection(resumed_record, outcome)


# ----------------------------------------------------------------------
# erasure under churn
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", CHAOS_SEEDS)
def test_live_erasure_under_membership_churn(seed):
    """Vehicles join and leave around the live erasure: the commit is
    byte-identical to the sequential reference, the erased late-joiner
    never returns, and unrelated churn is preserved."""
    churn = dict(joins={TARGET: 2, 4: 5}, leaves={1: 6})

    def schedule():
        return ParticipationSchedule.with_events(range(NUM_CLIENTS), **churn)

    record, outcome = run_live_erasure(seed, schedule=schedule())
    assert outcome.snapshot_watermark == ERASE_AT
    assert outcome.commit_round == ERASE_AT
    assert outcome.merge_mode == "replay"

    # Byte identity against the stop-the-world reference at the commit
    # round, under the identical churn schedule.
    ref_model, ref_sim = build_sim(seed, schedule=schedule())
    ref_record = ref_sim.run(outcome.commit_round)
    reference = SignRecoveryUnlearner(clip_threshold=5.0).unlearn(
        ref_record, [TARGET], ref_model
    )
    assert outcome.params.tobytes() == reference.params.tobytes()

    assert_no_resurrection(record, outcome)
    # Unrelated churn survives the erasure: the post-commit joiner
    # arrives on schedule, the scheduled leaver still leaves.
    assert 4 not in record.ledger.participants_at(4)
    assert 4 in record.ledger.participants_at(5)
    assert 1 in record.ledger.participants_at(5)
    assert 1 not in record.ledger.participants_at(6)
