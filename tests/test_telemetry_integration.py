"""Integration tests: a real (smoke-scale) train → unlearn pipeline run
under telemetry emits the documented metric names with finite values,
and the CLI ``--telemetry-dir`` flag writes the full artifact set.

Also asserts the null-sink overhead bound from docs/METRICS.md: with no
telemetry installed the instrumentation must not slow training
measurably (<3 % on a 20-round simulation).
"""

import math
import os
import time

import numpy as np
import pytest

from repro.eval import build_workload, config_for, train_workload
from repro.fl import with_sign_store
from repro.telemetry import METRICS, Telemetry, use_telemetry
from repro.telemetry.catalog import COUNTER, GAUGE, HISTOGRAM
from repro.unlearning import SignRecoveryUnlearner


@pytest.fixture(scope="module")
def instrumented_run(tmp_path_factory):
    """One short end-to-end run with telemetry on; returns the registry.

    clip_threshold=0.5 forces Eq. 7 clipping to actually fire (stored
    sign directions have unit magnitude), refresh_period=3 exercises
    the exact-refresh path, and checkpoint_dir makes the replay commit
    checkpoints.
    """
    config = config_for(
        "mnist", "smoke", num_rounds=12, clip_threshold=0.5, refresh_period=3
    )
    workload = build_workload(config)
    tm = Telemetry()
    with use_telemetry(tm):
        record = train_workload(workload)
        sign_record = with_sign_store(record, delta=config.delta)
        result = SignRecoveryUnlearner(
            clip_threshold=config.clip_threshold,
            buffer_size=config.buffer_size,
            refresh_period=config.refresh_period,
            checkpoint_dir=str(tmp_path_factory.mktemp("recovery_ckpt")),
        ).unlearn(sign_record, workload.forget_ids, workload.model)
    assert np.isfinite(result.params).all()
    return tm.registry


EXPECTED_NAMES = [
    # training loop
    "fl_rounds_total",
    "fl_round_seconds",
    "fl_client_update_seconds",
    "fl_client_update_bytes",
    "fl_participants",
    "fl_aggregate_seconds",
    # sign store
    "storage_encode_seconds",
    "storage_decode_seconds",
    "storage_encoded_elements_total",
    "storage_decoded_elements_total",
    "storage_put_bytes_total",
    "storage_raw_bytes_total",
    "storage_compression_ratio",
    # L-BFGS + estimator
    "lbfgs_hvp_seconds",
    "lbfgs_hvp_total",
    "lbfgs_buffer_update_seconds",
    "lbfgs_pairs_accepted_total",
    "recovery_clip_rate",
    "recovery_estimate_drift",
    # recovery replay
    "recovery_rounds_total",
    "recovery_round_seconds",
    "recovery_displacement_norm",
    "recovery_progress",
    "recovery_checkpoints_total",
]


class TestInstrumentedPipeline:
    def test_documented_names_are_emitted(self, instrumented_run):
        emitted = set(instrumented_run.names_emitted())
        missing = [n for n in EXPECTED_NAMES if n not in emitted]
        assert not missing, f"pipeline never emitted: {missing}"

    def test_everything_emitted_is_in_the_contract(self, instrumented_run):
        undocumented = set(instrumented_run.names_emitted()) - set(METRICS)
        assert not undocumented

    def test_all_values_finite(self, instrumented_run):
        reg = instrumented_run
        for name in reg.names_emitted():
            kind = reg.kind_of(name)
            for labels, value in reg.series(name):
                if kind == HISTOGRAM:
                    assert math.isfinite(value.sum), (name, labels)
                    assert value.count > 0, (name, labels)
                    assert math.isfinite(value.min) and math.isfinite(value.max)
                else:
                    assert math.isfinite(value), (name, labels)

    def test_round_accounting(self, instrumented_run):
        reg = instrumented_run
        assert reg.counter_value("fl_rounds_total") == 12.0
        assert reg.histogram("fl_round_seconds").count == 12
        # every stored update was sign-encoded exactly once per put
        assert reg.counter_value(
            "storage_encoded_elements_total", {"backend": "sign"}
        ) > 0

    def test_sign_store_compression_near_two_bits(self, instrumented_run):
        reg = instrumented_run
        ratio = reg.gauge_value("storage_compression_ratio", {"backend": "sign"})
        # 2 bits/elt vs float32 = 1/16; small records carry header slack
        assert 0.05 < ratio < 0.10
        put = reg.counter_value("storage_put_bytes_total", {"backend": "sign"})
        raw = reg.counter_value("storage_raw_bytes_total", {"backend": "sign"})
        assert put / raw == pytest.approx(ratio, rel=0.05)

    def test_clipping_actually_fired(self, instrumented_run):
        # With L=0.5 < |sign|=1 the Eq. 7 clip must hit some elements.
        clip = instrumented_run.histogram("recovery_clip_rate")
        assert clip.max > 0.0
        assert clip.max <= 1.0
        drift = instrumented_run.histogram("recovery_estimate_drift")
        assert drift.max > 0.0

    def test_recovery_progress_reaches_one(self, instrumented_run):
        reg = instrumented_run
        assert reg.gauge_value("recovery_progress") == pytest.approx(1.0)
        replayed = reg.counter_value("recovery_rounds_total")
        skipped = reg.counter_value("recovery_rounds_skipped_total")
        assert replayed + skipped == 10.0  # window [F=2, T=12)
        assert reg.counter_value("recovery_checkpoints_total") > 0


class TestCliTelemetryDir:
    def test_artifacts_written(self, tmp_path, capsys):
        from repro.eval.__main__ import main

        out = tmp_path / "telemetry"
        rc = main(
            ["storage", "--scale", "smoke", "--quiet", "--telemetry-dir", str(out)]
        )
        assert rc == 0
        for fname in ("events.jsonl", "metrics.prom", "metrics.csv", "summary.txt"):
            path = out / fname
            assert path.exists() and path.stat().st_size > 0, fname
        prom = (out / "metrics.prom").read_text()
        assert "# TYPE fl_rounds_total counter" in prom
        summary = (out / "summary.txt").read_text()
        assert summary.startswith("== run summary ==")
        captured = capsys.readouterr().out
        assert "== run summary ==" in captured
        assert "[telemetry written to" in captured


class TestNullOverhead:
    def test_disabled_telemetry_costs_under_three_percent(self):
        """ISSUE acceptance bound: null-sink 20-round sim within 3 %.

        Timing comparisons on shared CI boxes are noisy, so both
        variants take min-of-5 and the bound gets slack on top of the
        documented 3 % — this is a regression tripwire for someone
        accidentally making the null path do real work, not a
        microbenchmark.
        """
        config = config_for("mnist", "smoke", num_rounds=20)

        def run_once():
            workload = build_workload(config)
            start = time.perf_counter()
            train_workload(workload)
            return time.perf_counter() - start

        run_once()  # warm caches
        baseline = min(run_once() for _ in range(5))
        with use_telemetry(Telemetry()):
            live = min(run_once() for _ in range(5))
        # live telemetry (registry only) itself must stay cheap; the
        # null path is strictly cheaper than this upper bound.
        assert live < baseline * 1.5, (live, baseline)
