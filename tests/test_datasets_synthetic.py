"""Tests for the procedural MNIST-like and GTSRB-like generators."""

import itertools

import numpy as np
import pytest

from repro.datasets import (
    DIGIT_STROKES,
    SIGN_CLASSES,
    make_synthetic_gtsrb,
    make_synthetic_mnist,
    render_digit,
    render_sign,
)


class TestRenderDigit:
    def test_all_digits_defined(self):
        assert sorted(DIGIT_STROKES) == list(range(10))

    def test_shape_and_range(self):
        img = render_digit(3)
        assert img.shape == (28, 28)
        assert img.min() >= 0.0 and img.max() <= 1.0

    def test_custom_size(self):
        assert render_digit(0, image_size=16).shape == (16, 16)

    def test_canonical_deterministic(self):
        np.testing.assert_array_equal(render_digit(5), render_digit(5))

    def test_augmented_varies(self, rng):
        a = render_digit(5, rng=rng)
        b = render_digit(5, rng=rng)
        assert not np.array_equal(a, b)

    def test_classes_are_distinct(self):
        """Canonical glyphs must be pairwise separable."""
        canonical = {d: render_digit(d) for d in range(10)}
        for a, b in itertools.combinations(range(10), 2):
            diff = np.abs(canonical[a] - canonical[b]).mean()
            assert diff > 0.01, f"digits {a} and {b} render too similarly"

    def test_has_ink(self):
        for d in range(10):
            assert render_digit(d).max() > 0.5, f"digit {d} renders blank"

    def test_invalid_digit_raises(self):
        with pytest.raises(ValueError):
            render_digit(10)


class TestMakeSyntheticMnist:
    def test_shapes(self, rng):
        ds = make_synthetic_mnist(50, rng, image_size=20)
        assert ds.x.shape == (50, 1, 20, 20)
        assert ds.y.shape == (50,)
        assert ds.num_classes == 10

    def test_roughly_balanced(self, rng):
        ds = make_synthetic_mnist(1000, rng)
        counts = ds.class_counts()
        assert counts.min() > 50

    def test_class_weights(self, rng):
        weights = np.zeros(10)
        weights[3] = 1.0
        ds = make_synthetic_mnist(40, rng, class_weights=weights)
        assert (ds.y == 3).all()

    def test_invalid_weights_raise(self, rng):
        with pytest.raises(ValueError):
            make_synthetic_mnist(10, rng, class_weights=[1.0] * 9)

    def test_zero_samples_raise(self, rng):
        with pytest.raises(ValueError):
            make_synthetic_mnist(0, rng)

    def test_deterministic_given_seed(self):
        a = make_synthetic_mnist(20, np.random.default_rng(5))
        b = make_synthetic_mnist(20, np.random.default_rng(5))
        np.testing.assert_array_equal(a.x, b.x)
        np.testing.assert_array_equal(a.y, b.y)


class TestRenderSign:
    def test_all_classes_defined(self):
        assert sorted(SIGN_CLASSES) == list(range(10))

    def test_shape_and_range(self):
        img = render_sign(0)
        assert img.shape == (3, 32, 32)
        assert img.min() >= 0.0 and img.max() <= 1.0

    def test_canonical_deterministic(self):
        np.testing.assert_array_equal(render_sign(4), render_sign(4))

    def test_augmented_varies(self, rng):
        assert not np.array_equal(render_sign(4, rng=rng), render_sign(4, rng=rng))

    def test_classes_are_distinct(self):
        canonical = {c: render_sign(c) for c in SIGN_CLASSES}
        for a, b in itertools.combinations(SIGN_CLASSES, 2):
            diff = np.abs(canonical[a] - canonical[b]).mean()
            assert diff > 0.005, f"signs {a} and {b} render too similarly"

    def test_colors_differ_between_red_and_blue_families(self):
        stop = render_sign(5)  # red octagon
        ahead = render_sign(6)  # blue circle
        # Pixel above center (inside fill, off the glyph): red channel
        # dominates for stop, blue for ahead-only.
        r, c = 9, 16
        assert stop[0, r, c] > stop[2, r, c]
        assert ahead[2, r, c] > ahead[0, r, c]

    def test_invalid_class_raises(self):
        with pytest.raises(ValueError):
            render_sign(99)


class TestMakeSyntheticGtsrb:
    def test_shapes(self, rng):
        ds = make_synthetic_gtsrb(30, rng, image_size=24)
        assert ds.x.shape == (30, 3, 24, 24)
        assert ds.num_classes == 10

    def test_restricted_classes(self, rng):
        ds = make_synthetic_gtsrb(40, rng, num_classes=4)
        assert ds.y.max() < 4

    def test_invalid_num_classes(self, rng):
        with pytest.raises(ValueError):
            make_synthetic_gtsrb(10, rng, num_classes=1)
        with pytest.raises(ValueError):
            make_synthetic_gtsrb(10, rng, num_classes=99)

    def test_deterministic_given_seed(self):
        a = make_synthetic_gtsrb(15, np.random.default_rng(6))
        b = make_synthetic_gtsrb(15, np.random.default_rng(6))
        np.testing.assert_array_equal(a.x, b.x)


class TestLearnability:
    """The substitution argument (DESIGN.md §2) requires both synthetic
    tasks to be learnable by small models — checked cheaply here."""

    def test_mnist_like_learnable(self):
        from repro.nn import SGD, accuracy, mlp

        rng = np.random.default_rng(0)
        train = make_synthetic_mnist(600, np.random.default_rng(1), image_size=14)
        test = make_synthetic_mnist(200, np.random.default_rng(2), image_size=14)
        model = mlp(np.random.default_rng(3), 14 * 14, 10, hidden=32)
        opt = SGD(lr=0.5)
        for _ in range(25):
            for xb, yb in train.batches(64, rng=rng):
                _, grad = model.loss_and_flat_grad(xb, yb)
                model.set_flat_params(opt.step(model.get_flat_params(), grad))
        assert accuracy(model.predict(test.x), test.y) > 0.8

    def test_gtsrb_like_learnable(self):
        from repro.nn import SGD, accuracy, mlp

        rng = np.random.default_rng(0)
        train = make_synthetic_gtsrb(700, np.random.default_rng(1), image_size=16)
        test = make_synthetic_gtsrb(200, np.random.default_rng(2), image_size=16)
        model = mlp(np.random.default_rng(3), 3 * 16 * 16, 10, hidden=32)
        opt = SGD(lr=0.1)
        for _ in range(30):
            for xb, yb in train.batches(64, rng=rng):
                _, grad = model.loss_and_flat_grad(xb, yb)
                model.set_flat_params(opt.step(model.get_flat_params(), grad))
        assert accuracy(model.predict(test.x), test.y) > 0.7
