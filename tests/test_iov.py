"""Tests for the IoV mobility/connectivity/scenario stack."""

import numpy as np
import pytest

from repro.fl import ParticipationSchedule
from repro.iov import (
    IovScenario,
    RoadNetwork,
    Rsu,
    Vehicle,
    connectivity_trace,
    coverage_fraction,
    generate_iov_schedule,
    schedule_from_connectivity,
    simulate_positions,
)


class TestRoadNetwork:
    def test_grid_size(self):
        net = RoadNetwork(rows=4, cols=5)
        assert net.graph.number_of_nodes() == 20

    def test_positions_scale_with_block(self):
        net = RoadNetwork(rows=3, cols=3, block_length=100.0)
        np.testing.assert_array_equal(net.position_of((2, 1)), [100.0, 200.0])

    def test_extent(self):
        net = RoadNetwork(rows=3, cols=5, block_length=100.0)
        assert net.extent == (400.0, 200.0)

    def test_shortest_path_endpoints(self):
        net = RoadNetwork(rows=4, cols=4)
        path = net.shortest_path((0, 0), (3, 3))
        assert path[0] == (0, 0) and path[-1] == (3, 3)
        assert len(path) == 7  # manhattan distance + 1

    def test_too_small_raises(self):
        with pytest.raises(ValueError):
            RoadNetwork(rows=1, cols=5)


class TestVehicle:
    def test_moves(self, rng):
        net = RoadNetwork()
        vehicle = Vehicle(0, net, rng)
        p0 = vehicle.position.copy()
        positions = [vehicle.step() for _ in range(20)]
        assert any(not np.array_equal(p, p0) for p in positions)

    def test_stays_on_grid_bounds(self, rng):
        net = RoadNetwork(rows=4, cols=4, block_length=100.0)
        vehicle = Vehicle(0, net, rng)
        for _ in range(100):
            p = vehicle.step()
            assert -1 <= p[0] <= 301 and -1 <= p[1] <= 301

    def test_speed_range_validation(self, rng):
        with pytest.raises(ValueError):
            Vehicle(0, RoadNetwork(), rng, speed_range=(0.0, 10.0))
        with pytest.raises(ValueError):
            Vehicle(0, RoadNetwork(), rng, speed_range=(10.0, 5.0))

    def test_deterministic_given_seed(self):
        net = RoadNetwork()
        a = Vehicle(0, net, np.random.default_rng(3))
        b = Vehicle(0, RoadNetwork(), np.random.default_rng(3))
        for _ in range(10):
            np.testing.assert_allclose(a.step(), b.step())


class TestSimulatePositions:
    def test_trace_shapes(self, rng):
        net = RoadNetwork()
        vehicles = [Vehicle(i, net, np.random.default_rng(i)) for i in range(3)]
        traces = simulate_positions(vehicles, 15)
        assert set(traces) == {0, 1, 2}
        assert all(t.shape == (15, 2) for t in traces.values())

    def test_zero_steps_raises(self, rng):
        with pytest.raises(ValueError):
            simulate_positions([], 0)


class TestRsu:
    def test_covers(self):
        rsu = Rsu(position=(0.0, 0.0), coverage_radius=10.0)
        assert rsu.covers(np.array([5.0, 5.0]))
        assert not rsu.covers(np.array([20.0, 0.0]))

    def test_covers_many(self):
        rsu = Rsu(position=(0.0, 0.0), coverage_radius=10.0)
        points = np.array([[0, 0], [9, 0], [11, 0]], dtype=float)
        np.testing.assert_array_equal(rsu.covers_many(points), [True, True, False])

    def test_invalid(self):
        with pytest.raises(ValueError):
            Rsu(position=(0.0, 0.0), coverage_radius=0.0)
        with pytest.raises(ValueError):
            Rsu(position=(0.0,), coverage_radius=5.0)


class TestConnectivity:
    def test_no_loss_inside_coverage(self, rng):
        traces = {0: np.zeros((10, 2))}
        rsu = Rsu(position=(0.0, 0.0), coverage_radius=5.0)
        conn = connectivity_trace(traces, rsu, rng, packet_loss=0.0)
        assert conn[0].all()

    def test_outside_coverage_disconnected(self, rng):
        traces = {0: np.full((10, 2), 100.0)}
        rsu = Rsu(position=(0.0, 0.0), coverage_radius=5.0)
        conn = connectivity_trace(traces, rsu, rng, packet_loss=0.0)
        assert not conn[0].any()

    def test_packet_loss_rate(self, rng):
        traces = {0: np.zeros((5000, 2))}
        rsu = Rsu(position=(0.0, 0.0), coverage_radius=5.0)
        conn = connectivity_trace(traces, rsu, rng, packet_loss=0.2)
        assert 0.7 < conn[0].mean() < 0.9

    def test_invalid_loss(self, rng):
        with pytest.raises(ValueError):
            connectivity_trace({}, Rsu((0, 0), 1.0), rng, packet_loss=1.0)

    def test_coverage_fraction(self):
        conn = {0: np.array([True, False]), 1: np.array([True, True])}
        assert coverage_fraction(conn) == pytest.approx(0.75)

    def test_coverage_fraction_empty_raises(self):
        with pytest.raises(ValueError):
            coverage_fraction({})


class TestScheduleFromConnectivity:
    def test_join_at_first_connection(self):
        conn = {0: np.array([False, False, True, True, True])}
        sched = schedule_from_connectivity(conn, leave_after=3)
        assert sched.join_rounds[0] == 2

    def test_never_connected_omitted(self):
        conn = {0: np.array([False] * 5), 1: np.array([True] * 5)}
        sched = schedule_from_connectivity(conn)
        assert 0 not in sched.join_rounds
        assert 1 in sched.join_rounds

    def test_short_gap_is_dropout(self):
        conn = {0: np.array([True, False, True, True, True])}
        sched = schedule_from_connectivity(conn, leave_after=3)
        assert (1, 0) in sched.dropouts
        assert sched.leave_rounds.get(0) is None

    def test_long_gap_is_leave(self):
        conn = {0: np.array([True, True, False, False, False, False, True])}
        sched = schedule_from_connectivity(conn, leave_after=4)
        assert sched.leave_rounds[0] == 2

    def test_trailing_long_gap_is_leave(self):
        conn = {0: np.array([True, True, False, False, False])}
        sched = schedule_from_connectivity(conn, leave_after=3)
        assert sched.leave_rounds[0] == 2

    def test_trailing_short_gap_is_dropout(self):
        conn = {0: np.array([True, True, True, False])}
        sched = schedule_from_connectivity(conn, leave_after=3)
        assert (3, 0) in sched.dropouts
        assert sched.leave_rounds.get(0) is None

    def test_schedule_is_consistent(self):
        """Derived schedules satisfy ParticipationSchedule invariants."""
        rng = np.random.default_rng(0)
        conn = {i: rng.random(40) < 0.7 for i in range(12)}
        # Ensure each connects at least once so all are scheduled.
        for mask in conn.values():
            mask[0] = True
        sched = schedule_from_connectivity(conn, leave_after=5)
        assert isinstance(sched, ParticipationSchedule)
        for t in range(40):
            sched.participants_at(t)  # must not raise


class TestGenerateIovSchedule:
    def test_end_to_end(self, rng):
        scenario = IovScenario(num_vehicles=12, num_rounds=30)
        sched, conn = generate_iov_schedule(scenario, rng)
        assert len(conn) == 12
        assert 0 < coverage_fraction(conn) <= 1.0

    def test_invalid_scenario(self):
        with pytest.raises(ValueError):
            IovScenario(num_vehicles=0, num_rounds=10)
        with pytest.raises(ValueError):
            IovScenario(num_vehicles=5, num_rounds=10, leave_after=0)

    def test_deterministic(self):
        scenario = IovScenario(num_vehicles=8, num_rounds=20)
        s1, _ = generate_iov_schedule(scenario, np.random.default_rng(4))
        s2, _ = generate_iov_schedule(scenario, np.random.default_rng(4))
        assert s1.join_rounds == s2.join_rounds
        assert s1.dropouts == s2.dropouts
