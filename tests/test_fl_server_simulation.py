"""Tests for RsuServer, ParticipationSchedule, and FederatedSimulation."""

import numpy as np
import pytest

from repro.datasets import ArrayDataset
from repro.fl import (
    FederatedSimulation,
    ParticipationSchedule,
    RsuServer,
    VehicleClient,
    with_sign_store,
)
from repro.nn import mlp
from repro.storage import FullGradientStore, SignGradientStore


def make_clients(rng, n=4, samples=20, features=6):
    clients = []
    for i in range(n):
        x = rng.normal(size=(samples, features))
        y = (x[:, 0] > 0).astype(np.int64)
        ds = ArrayDataset(x=x, y=y, num_classes=2)
        clients.append(VehicleClient(i, ds, np.random.default_rng(i), batch_size=8))
    return clients


class TestRsuServer:
    def test_initial_checkpoint(self, rng):
        server = RsuServer(rng.normal(size=10), learning_rate=0.1)
        assert server.checkpoints.has(0)

    def test_run_round_applies_eq2(self):
        server = RsuServer(np.zeros(3), learning_rate=0.5)
        server.register_client(0, num_samples=10, join_round=0)
        new = server.run_round({0: np.ones(3)})
        np.testing.assert_allclose(new, -0.5 * np.ones(3))

    def test_run_round_weighted(self):
        server = RsuServer(np.zeros(1), learning_rate=1.0)
        server.register_client(0, num_samples=10, join_round=0)
        server.register_client(1, num_samples=30, join_round=0)
        new = server.run_round({0: np.array([0.0]), 1: np.array([4.0])})
        assert new[0] == pytest.approx(-3.0)

    def test_records_gradients(self, rng):
        server = RsuServer(np.zeros(4), learning_rate=0.1)
        server.register_client(0, 5, 0)
        g = rng.normal(size=4)
        server.run_round({0: g})
        assert server.gradients.has(0, 0)

    def test_unregistered_client_raises(self):
        server = RsuServer(np.zeros(2), learning_rate=0.1)
        with pytest.raises(KeyError):
            server.run_round({0: np.zeros(2)})

    def test_empty_round_raises(self):
        server = RsuServer(np.zeros(2), learning_rate=0.1)
        with pytest.raises(ValueError):
            server.run_round({})

    def test_skip_round_keeps_params(self):
        server = RsuServer(np.ones(2), learning_rate=0.1)
        out = server.skip_round()
        np.testing.assert_array_equal(out, np.ones(2))
        assert server.round_index == 1
        assert server.checkpoints.has(1)

    def test_default_store_is_sign(self):
        server = RsuServer(np.zeros(2), learning_rate=0.1)
        assert isinstance(server.gradients, SignGradientStore)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            RsuServer(np.zeros(2), learning_rate=0.0)
        with pytest.raises(ValueError):
            RsuServer(np.zeros(2), learning_rate=0.1, aggregator="nope")


class TestParticipationSchedule:
    def test_always_on(self):
        sched = ParticipationSchedule.always_on([0, 1, 2])
        assert sched.participants_at(0) == [0, 1, 2]
        assert sched.participants_at(99) == [0, 1, 2]

    def test_with_joins(self):
        sched = ParticipationSchedule.with_events([0, 1], joins={1: 5})
        assert sched.participants_at(4) == [0]
        assert sched.participants_at(5) == [0, 1]

    def test_with_leaves(self):
        sched = ParticipationSchedule.with_events([0, 1], leaves={1: 3})
        assert sched.participants_at(2) == [0, 1]
        assert sched.participants_at(3) == [0]

    def test_dropouts(self):
        sched = ParticipationSchedule.with_events([0, 1], dropouts=[(2, 1)])
        assert sched.participants_at(2) == [0]
        assert sched.participants_at(3) == [0, 1]

    def test_leave_before_join_raises(self):
        with pytest.raises(ValueError):
            ParticipationSchedule.with_events([0], joins={0: 5}, leaves={0: 5})

    def test_dropout_unknown_client_raises(self):
        with pytest.raises(ValueError):
            ParticipationSchedule(join_rounds={0: 0}, dropouts={(1, 99)})

    def test_random_dropouts_rate(self, rng):
        sched = ParticipationSchedule.random_dropouts(
            range(10), rounds=50, dropout_rate=0.3, rng=rng
        )
        total = 10 * 50
        assert 0.2 < len(sched.dropouts) / total < 0.4

    def test_random_dropouts_invalid_rate(self, rng):
        with pytest.raises(ValueError):
            ParticipationSchedule.random_dropouts(range(3), 10, 1.0, rng)


class TestFederatedSimulation:
    def test_produces_valid_record(self, rng):
        clients = make_clients(rng)
        model = mlp(np.random.default_rng(0), 6, 2, hidden=8)
        sim = FederatedSimulation(model, clients, learning_rate=0.05)
        record = sim.run(10)
        record.validate()
        assert record.num_rounds == 10
        assert record.checkpoints.has(10)

    def test_respects_join_schedule(self, rng):
        clients = make_clients(rng)
        model = mlp(np.random.default_rng(0), 6, 2, hidden=8)
        sched = ParticipationSchedule.with_events(range(4), joins={3: 4})
        sim = FederatedSimulation(model, clients, learning_rate=0.05, schedule=sched)
        record = sim.run(8)
        assert record.ledger.join_round(3) == 4
        assert not record.gradients.has(3, 3)
        assert record.gradients.has(4, 3)

    def test_respects_leaves(self, rng):
        clients = make_clients(rng)
        model = mlp(np.random.default_rng(0), 6, 2, hidden=8)
        sched = ParticipationSchedule.with_events(range(4), leaves={2: 5})
        sim = FederatedSimulation(model, clients, learning_rate=0.05, schedule=sched)
        record = sim.run(8)
        assert record.gradients.has(4, 2)
        assert not record.gradients.has(5, 2)
        assert record.ledger.leave_round(2) == 5

    def test_respects_dropouts(self, rng):
        clients = make_clients(rng)
        model = mlp(np.random.default_rng(0), 6, 2, hidden=8)
        sched = ParticipationSchedule.with_events(range(4), dropouts=[(3, 1)])
        sim = FederatedSimulation(model, clients, learning_rate=0.05, schedule=sched)
        record = sim.run(6)
        assert not record.gradients.has(3, 1)
        assert not record.ledger.participated(1, 3)
        record.validate()

    def test_empty_round_skips(self, rng):
        clients = make_clients(rng, n=2)
        model = mlp(np.random.default_rng(0), 6, 2, hidden=8)
        sched = ParticipationSchedule.with_events([0, 1], joins={0: 2, 1: 2})
        sim = FederatedSimulation(model, clients, learning_rate=0.05, schedule=sched)
        record = sim.run(5)
        w0 = record.params_at(0)
        w2 = record.params_at(2)
        np.testing.assert_array_equal(w0, w2)  # idle rounds keep params

    def test_duplicate_ids_raise(self, rng):
        clients = make_clients(rng, n=2)
        clients[1].client_id = 0
        model = mlp(np.random.default_rng(0), 6, 2, hidden=8)
        with pytest.raises(ValueError):
            FederatedSimulation(model, clients, learning_rate=0.05)

    def test_schedule_unknown_client_raises(self, rng):
        clients = make_clients(rng, n=2)
        model = mlp(np.random.default_rng(0), 6, 2, hidden=8)
        sched = ParticipationSchedule.always_on([0, 1, 7])
        with pytest.raises(ValueError):
            FederatedSimulation(model, clients, learning_rate=0.05, schedule=sched)

    def test_accuracy_history_recorded(self, rng):
        clients = make_clients(rng)
        model = mlp(np.random.default_rng(0), 6, 2, hidden=8)
        test = ArrayDataset(rng.normal(size=(20, 6)), rng.integers(0, 2, 20), num_classes=2)
        sim = FederatedSimulation(
            model, clients, learning_rate=0.05, test_set=test, eval_every=5
        )
        record = sim.run(10)
        assert len(record.accuracy_history) == 2

    def test_training_reduces_loss(self, rng):
        clients = make_clients(rng, n=3, samples=60)
        model = mlp(np.random.default_rng(0), 6, 2, hidden=8)
        w0 = model.get_flat_params()
        x = np.concatenate([c.dataset.x for c in clients])
        y = np.concatenate([c.dataset.y for c in clients])
        model.set_flat_params(w0)
        loss_before = model.evaluate_loss(x, y)
        sim = FederatedSimulation(model, clients, learning_rate=2e-3)
        record = sim.run(60)
        model.set_flat_params(record.final_params())
        assert model.evaluate_loss(x, y) < loss_before


class TestWithSignStore:
    def test_derives_directions(self, rng):
        clients = make_clients(rng)
        model = mlp(np.random.default_rng(0), 6, 2, hidden=8)
        sim = FederatedSimulation(
            model, clients, learning_rate=0.05, gradient_store=FullGradientStore()
        )
        record = sim.run(5)
        sign_record = with_sign_store(record, delta=1e-6)
        sign_record.validate()
        g = sign_record.gradients.get(0, 0)
        assert set(np.unique(g)).issubset({-1.0, 0.0, 1.0})

    def test_matches_direct_ternarize(self, rng):
        clients = make_clients(rng)
        model = mlp(np.random.default_rng(0), 6, 2, hidden=8)
        sim = FederatedSimulation(
            model, clients, learning_rate=0.05, gradient_store=FullGradientStore()
        )
        record = sim.run(3)
        from repro.storage import ternarize

        sign_record = with_sign_store(record, delta=1e-6)
        full = record.gradients.get(1, 2)
        np.testing.assert_array_equal(
            sign_record.gradients.get(1, 2), ternarize(full, 1e-6).astype(float)
        )

    def test_shares_checkpoints(self, rng):
        clients = make_clients(rng)
        model = mlp(np.random.default_rng(0), 6, 2, hidden=8)
        sim = FederatedSimulation(
            model, clients, learning_rate=0.05, gradient_store=FullGradientStore()
        )
        record = sim.run(3)
        sign_record = with_sign_store(record)
        assert sign_record.checkpoints is record.checkpoints

    def test_sign_store_smaller(self, rng):
        clients = make_clients(rng)
        model = mlp(np.random.default_rng(0), 6, 2, hidden=8)
        sim = FederatedSimulation(
            model, clients, learning_rate=0.05, gradient_store=FullGradientStore()
        )
        record = sim.run(4)
        sign_record = with_sign_store(record)
        assert sign_record.gradients.nbytes() < record.gradients.nbytes() / 10
