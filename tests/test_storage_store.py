"""Tests for gradient/model stores and their byte accounting."""

import numpy as np
import pytest

from repro.storage import (
    FullGradientStore,
    ModelCheckpointStore,
    SignGradientStore,
    make_gradient_store,
)


@pytest.fixture(params=["full", "sign"])
def store(request):
    return make_gradient_store(request.param)


class TestGradientStoreInterface:
    def test_put_get_has(self, store, rng):
        g = rng.normal(size=32)
        store.put(3, 7, g)
        assert store.has(3, 7)
        assert not store.has(3, 8)
        assert store.get(3, 7).shape == (32,)

    def test_get_missing_raises(self, store):
        with pytest.raises(KeyError):
            store.get(0, 0)

    def test_rounds_and_clients(self, store, rng):
        store.put(1, 5, rng.normal(size=4))
        store.put(1, 3, rng.normal(size=4))
        store.put(2, 5, rng.normal(size=4))
        assert store.rounds() == [1, 2]
        assert store.clients_at(1) == [3, 5]
        assert store.clients_at(2) == [5]

    def test_drop_client(self, store, rng):
        store.put(1, 5, rng.normal(size=4))
        store.put(2, 5, rng.normal(size=4))
        store.put(1, 6, rng.normal(size=4))
        assert store.drop_client(5) == 2
        assert not store.has(1, 5)
        assert store.has(1, 6)

    def test_nbytes_grows(self, store, rng):
        before = store.nbytes()
        store.put(0, 0, rng.normal(size=1000))
        assert store.nbytes() > before

    def test_overwrite_same_key(self, store, rng):
        store.put(0, 0, np.ones(8))
        store.put(0, 0, -np.ones(8))
        value = store.get(0, 0)
        assert (value <= 0).all()


class TestFullGradientStore:
    def test_returns_values_float32_rounded(self, rng):
        store = FullGradientStore()
        g = rng.normal(size=16)
        store.put(0, 0, g)
        np.testing.assert_allclose(store.get(0, 0), g, atol=1e-6)

    def test_nbytes_is_4_per_element(self):
        store = FullGradientStore()
        store.put(0, 0, np.zeros(100))
        assert store.nbytes() == 400


class TestSignGradientStore:
    def test_returns_directions(self, rng):
        store = SignGradientStore(delta=1e-6)
        store.put(0, 0, np.array([0.5, -0.5, 0.0]))
        np.testing.assert_array_equal(store.get(0, 0), [1.0, -1.0, 0.0])

    def test_delta_thresholding(self):
        store = SignGradientStore(delta=0.1)
        store.put(0, 0, np.array([0.05, 0.2, -0.05, -0.2]))
        np.testing.assert_array_equal(store.get(0, 0), [0.0, 1.0, 0.0, -1.0])

    def test_nbytes_is_quarter_byte_per_element(self):
        store = SignGradientStore()
        store.put(0, 0, np.zeros(100))
        assert store.nbytes() == 25

    def test_storage_savings_vs_full(self, rng):
        """The headline claim: ~94% fewer bytes than float32 storage."""
        g = rng.normal(size=10_000)
        full = FullGradientStore()
        sign = SignGradientStore()
        full.put(0, 0, g)
        sign.put(0, 0, g)
        savings = 1 - sign.nbytes() / full.nbytes()
        assert savings > 0.93

    def test_negative_delta_raises(self):
        with pytest.raises(ValueError):
            SignGradientStore(delta=-1.0)


class TestMakeGradientStore:
    def test_kinds(self):
        assert isinstance(make_gradient_store("full"), FullGradientStore)
        assert isinstance(make_gradient_store("sign"), SignGradientStore)

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            make_gradient_store("zip")


class TestModelCheckpointStore:
    def test_put_get(self, rng):
        store = ModelCheckpointStore()
        w = rng.normal(size=64)
        store.put(5, w)
        np.testing.assert_allclose(store.get(5), w, atol=1e-6)

    def test_missing_raises(self):
        with pytest.raises(KeyError):
            ModelCheckpointStore().get(3)

    def test_latest(self, rng):
        store = ModelCheckpointStore()
        store.put(1, rng.normal(size=4))
        w9 = rng.normal(size=4)
        store.put(9, w9)
        round_index, params = store.latest()
        assert round_index == 9
        np.testing.assert_allclose(params, w9, atol=1e-6)

    def test_latest_empty_raises(self):
        with pytest.raises(KeyError):
            ModelCheckpointStore().latest()

    def test_rounds_sorted(self, rng):
        store = ModelCheckpointStore()
        for r in (5, 1, 3):
            store.put(r, rng.normal(size=2))
        assert store.rounds() == [1, 3, 5]

    def test_prune(self, rng):
        store = ModelCheckpointStore()
        for r in range(6):
            store.put(r, rng.normal(size=2))
        removed = store.prune(keep=[0, 5])
        assert removed == 4
        assert store.rounds() == [0, 5]

    def test_nbytes(self):
        store = ModelCheckpointStore()
        store.put(0, np.zeros(10))
        assert store.nbytes() == 40
