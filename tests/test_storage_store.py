"""Tests for gradient/model stores and their byte accounting."""

import numpy as np
import pytest

from repro.storage import (
    FullGradientStore,
    GradientStore,
    ModelCheckpointStore,
    SignGradientStore,
    default_sign_backend,
    encode_gradient,
    make_gradient_store,
    set_default_sign_backend,
)


@pytest.fixture(params=["full", "sign"])
def store(request):
    return make_gradient_store(request.param)


class TestGradientStoreInterface:
    def test_put_get_has(self, store, rng):
        g = rng.normal(size=32)
        store.put(3, 7, g)
        assert store.has(3, 7)
        assert not store.has(3, 8)
        assert store.get(3, 7).shape == (32,)

    def test_get_missing_raises(self, store):
        with pytest.raises(KeyError):
            store.get(0, 0)

    def test_rounds_and_clients(self, store, rng):
        store.put(1, 5, rng.normal(size=4))
        store.put(1, 3, rng.normal(size=4))
        store.put(2, 5, rng.normal(size=4))
        assert store.rounds() == [1, 2]
        assert store.clients_at(1) == [3, 5]
        assert store.clients_at(2) == [5]

    def test_drop_client(self, store, rng):
        store.put(1, 5, rng.normal(size=4))
        store.put(2, 5, rng.normal(size=4))
        store.put(1, 6, rng.normal(size=4))
        assert store.drop_client(5) == 2
        assert not store.has(1, 5)
        assert store.has(1, 6)

    def test_nbytes_grows(self, store, rng):
        before = store.nbytes()
        store.put(0, 0, rng.normal(size=1000))
        assert store.nbytes() > before

    def test_overwrite_same_key(self, store, rng):
        store.put(0, 0, np.ones(8))
        store.put(0, 0, -np.ones(8))
        value = store.get(0, 0)
        assert (value <= 0).all()


class TestFullGradientStore:
    def test_returns_values_float32_rounded(self, rng):
        store = FullGradientStore()
        g = rng.normal(size=16)
        store.put(0, 0, g)
        np.testing.assert_allclose(store.get(0, 0), g, atol=1e-6)

    def test_nbytes_is_4_per_element(self):
        store = FullGradientStore()
        store.put(0, 0, np.zeros(100))
        assert store.nbytes() == 400


class TestSignGradientStore:
    def test_returns_directions(self, rng):
        store = SignGradientStore(delta=1e-6)
        store.put(0, 0, np.array([0.5, -0.5, 0.0]))
        np.testing.assert_array_equal(store.get(0, 0), [1.0, -1.0, 0.0])

    def test_delta_thresholding(self):
        store = SignGradientStore(delta=0.1)
        store.put(0, 0, np.array([0.05, 0.2, -0.05, -0.2]))
        np.testing.assert_array_equal(store.get(0, 0), [0.0, 1.0, 0.0, -1.0])

    def test_nbytes_is_quarter_byte_per_element(self):
        store = SignGradientStore()
        store.put(0, 0, np.zeros(100))
        assert store.nbytes() == 25

    def test_storage_savings_vs_full(self, rng):
        """The headline claim: ~94% fewer bytes than float32 storage."""
        g = rng.normal(size=10_000)
        full = FullGradientStore()
        sign = SignGradientStore()
        full.put(0, 0, g)
        sign.put(0, 0, g)
        savings = 1 - sign.nbytes() / full.nbytes()
        assert savings > 0.93

    def test_negative_delta_raises(self):
        with pytest.raises(ValueError):
            SignGradientStore(delta=-1.0)


class TestNbytesAccounting:
    """The incremental nbytes cache must never drift from a full recount.

    Regression guard: ``put_encoded`` used to accept non-flat payloads
    and ``drop_client`` kept its own key scan, so a drop-then-reinsert
    of a reshaped payload could desynchronize the cache.  Accounting now
    funnels through one choke point; these sequences pin that down.
    """

    @pytest.mark.parametrize("kind", ["full", "sign"])
    def test_recount_matches_through_mutation_sequence(self, kind, rng):
        store = make_gradient_store(kind)
        assert store.nbytes() == store.recount_nbytes() == 0
        # puts, batched puts, overwrites, drops, reinsert of a dropped key
        for t in range(3):
            store.put_round(t, {c: rng.normal(size=40) for c in range(4)})
            assert store.nbytes() == store.recount_nbytes()
        store.put(1, 2, rng.normal(size=40))  # overwrite same key
        assert store.nbytes() == store.recount_nbytes()
        assert store.drop_client(2) == 3
        assert store.nbytes() == store.recount_nbytes()
        store.put(1, 2, rng.normal(size=40))  # reinsert dropped key
        assert store.nbytes() == store.recount_nbytes()
        store.drop_client(0)
        store.drop_client(1)
        store.drop_client(2)
        store.drop_client(3)
        assert store.nbytes() == store.recount_nbytes() == 0

    def test_recount_matches_through_put_encoded(self, rng):
        store = SignGradientStore()
        packed, length = encode_gradient(rng.normal(size=101), 1e-6)
        store.put_encoded(0, 0, packed, length)
        assert store.nbytes() == store.recount_nbytes()
        # Non-flat payloads are normalized, not stored verbatim.
        store.put_encoded(0, 1, packed.reshape(1, -1), length)
        assert store.nbytes() == store.recount_nbytes()
        np.testing.assert_array_equal(store.get(0, 0), store.get(0, 1))
        # overwrite an encoded record through the plain put path
        store.put(0, 1, rng.normal(size=11))
        assert store.nbytes() == store.recount_nbytes()
        store.drop_client(1)
        assert store.nbytes() == store.recount_nbytes()

    def test_put_encoded_validates(self):
        store = SignGradientStore()
        with pytest.raises(ValueError):
            store.put_encoded(0, 0, np.zeros(2, dtype=np.uint8), -1)
        with pytest.raises(ValueError):
            store.put_encoded(0, 0, np.zeros(2, dtype=np.uint8), 100)


class TestGetRound:
    """Bulk round decode equals per-client get, bit for bit."""

    @pytest.mark.parametrize("kind", ["full", "sign"])
    def test_bulk_matches_per_client(self, kind, rng):
        store = make_gradient_store(kind)
        assert store.supports_bulk_round
        for t in range(3):
            store.put_round(t, {c: rng.normal(size=33) * 1e-3 for c in range(5)})
        for t in range(3):
            bulk = store.get_round(t)
            assert sorted(bulk) == store.clients_at(t)
            for cid in bulk:
                np.testing.assert_array_equal(bulk[cid], store.get(t, cid))

    def test_empty_round(self, store):
        assert store.get_round(17) == {}

    def test_heterogeneous_lengths_fall_back(self, rng):
        store = SignGradientStore()
        store.put(0, 0, rng.normal(size=8))
        store.put(0, 1, rng.normal(size=12))
        bulk = store.get_round(0)
        assert sorted(bulk) == [0, 1]
        for cid in (0, 1):
            np.testing.assert_array_equal(bulk[cid], store.get(0, cid))

    def test_base_interface_default_loops_get(self, rng):
        assert GradientStore.supports_bulk_round is False


class TestSignBackendPolicy:
    def test_default_is_dict(self):
        assert default_sign_backend() == "dict"

    def test_set_returns_previous_and_roundtrips(self):
        previous = set_default_sign_backend("mmap")
        try:
            assert previous == "dict"
            assert default_sign_backend() == "mmap"
        finally:
            set_default_sign_backend(previous)
        assert default_sign_backend() == "dict"

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError):
            set_default_sign_backend("sqlite")


class TestMakeGradientStore:
    def test_kinds(self):
        assert isinstance(make_gradient_store("full"), FullGradientStore)
        assert isinstance(make_gradient_store("sign"), SignGradientStore)

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            make_gradient_store("zip")


class TestModelCheckpointStore:
    def test_put_get(self, rng):
        store = ModelCheckpointStore()
        w = rng.normal(size=64)
        store.put(5, w)
        np.testing.assert_allclose(store.get(5), w, atol=1e-6)

    def test_missing_raises(self):
        with pytest.raises(KeyError):
            ModelCheckpointStore().get(3)

    def test_latest(self, rng):
        store = ModelCheckpointStore()
        store.put(1, rng.normal(size=4))
        w9 = rng.normal(size=4)
        store.put(9, w9)
        round_index, params = store.latest()
        assert round_index == 9
        np.testing.assert_allclose(params, w9, atol=1e-6)

    def test_latest_empty_raises(self):
        with pytest.raises(KeyError):
            ModelCheckpointStore().latest()

    def test_rounds_sorted(self, rng):
        store = ModelCheckpointStore()
        for r in (5, 1, 3):
            store.put(r, rng.normal(size=2))
        assert store.rounds() == [1, 3, 5]

    def test_prune(self, rng):
        store = ModelCheckpointStore()
        for r in range(6):
            store.put(r, rng.normal(size=2))
        removed = store.prune(keep=[0, 5])
        assert removed == 4
        assert store.rounds() == [0, 5]

    def test_nbytes(self):
        store = ModelCheckpointStore()
        store.put(0, np.zeros(10))
        assert store.nbytes() == 40
