"""End-to-end chaos scenarios: crashes, corruption, rotting disks.

Every test here runs a real (small) federated simulation under
injected faults and asserts the resilience guarantees of the
``repro.faults`` subsystem:

- a simulation killed after *any* round and resumed from its journal
  produces a bitwise-identical training record;
- mangled updates (NaN/Inf/shape/scale/garbage) never reach
  aggregation — quarantined clients are recorded as round dropouts;
- truncated or bit-rotted record files surface as a single clear
  :class:`~repro.fl.persistence.RecordCorruptionError`;
- the recovery unlearner resumes from its checkpoint bitwise and
  tolerates records with missing gradient entries.

Seeds come from the ``CHAOS_SEEDS`` environment variable (comma
separated); ``make chaos`` sweeps several, the default suite runs one.
"""

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import make_synthetic_mnist, partition_iid, train_test_split
from repro.faults import FaultPlan, RetryPolicy, ServerKilledError, UpdateValidator
from repro.fl import (
    FederatedSimulation,
    RecordCorruptionError,
    RoundJournal,
    RsuServer,
    VehicleClient,
    load_record,
    save_record,
)
from repro.faults import corrupt_npz_entry, corrupt_update, truncate_file
from repro.nn import mlp
from repro.storage import FullGradientStore, SignGradientStore
from repro.unlearning import SignRecoveryUnlearner
from repro.utils.rng import SeedSequenceTree

pytestmark = pytest.mark.chaos

CHAOS_SEEDS = [int(s) for s in os.environ.get("CHAOS_SEEDS", "7").split(",")]

NUM_ROUNDS = 8
NUM_CLIENTS = 5
IMAGE = 8
FEATURES = IMAGE * IMAGE


def build_sim(seed, store="sign", with_test_set=False, **kwargs):
    """A tiny but real FL setup, rebuilt identically from its seed."""
    tree = SeedSequenceTree(seed)
    data = make_synthetic_mnist(200, tree.rng("data"), image_size=IMAGE)
    train, test = train_test_split(data, 0.2, tree.rng("split"))
    shards = partition_iid(train, NUM_CLIENTS, tree.rng("part"))
    clients = [
        VehicleClient(i, shards[i], tree.rng(f"c{i}"), batch_size=16)
        for i in range(NUM_CLIENTS)
    ]
    model = mlp(tree.rng("model"), FEATURES, 10, hidden=8)
    gradient_store = SignGradientStore() if store == "sign" else FullGradientStore()
    if with_test_set:
        kwargs.update(test_set=test, eval_every=NUM_ROUNDS)
    return model, FederatedSimulation(
        model, clients, 2e-3, gradient_store=gradient_store, **kwargs
    )


def assert_records_equal(a, b):
    """Bitwise equality of two training records (params + history)."""
    np.testing.assert_array_equal(a.final_params(), b.final_params())
    for t in range(a.num_rounds + 1):
        np.testing.assert_array_equal(a.params_at(t), b.params_at(t))
    assert a.ledger.to_dict() == b.ledger.to_dict()
    assert a.client_sizes == b.client_sizes
    items_a, items_b = a.gradients.items(), b.gradients.items()
    assert [k for k, _ in items_a] == [k for k, _ in items_b]
    for (_, pa), (_, pb) in zip(items_a, items_b):
        if isinstance(pa, tuple):  # sign store: (packed bytes, length)
            np.testing.assert_array_equal(pa[0], pb[0])
            assert pa[1] == pb[1]
        else:
            np.testing.assert_array_equal(pa, pb)


# ----------------------------------------------------------------------
# kill/resume equivalence
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", CHAOS_SEEDS)
def test_kill_and_resume_at_every_round_is_bitwise_identical(seed, tmp_path):
    """Killing the server after any round k and resuming from the
    journal must reproduce the uninterrupted record exactly."""
    _, ref_sim = build_sim(seed)
    reference = ref_sim.run(NUM_ROUNDS)
    for k in range(NUM_ROUNDS - 1):
        journal = RoundJournal(str(tmp_path / f"j{k}"))
        _, victim = build_sim(seed, fault_plan=FaultPlan(server_kills={k}))
        with pytest.raises(ServerKilledError) as err:
            victim.run(NUM_ROUNDS, journal=journal)
        assert err.value.round_index == k
        _, survivor = build_sim(seed)
        resumed = survivor.run(NUM_ROUNDS, journal=journal)
        assert_records_equal(resumed, reference)


@pytest.mark.parametrize("seed", CHAOS_SEEDS)
def test_kill_and_resume_under_client_faults(seed, tmp_path):
    """Resume equivalence must hold with client faults active too: the
    resumed run replays the same fault schedule, corruption randomness,
    and validator decisions."""

    def plan(kills=()):
        return FaultPlan.random(
            range(NUM_CLIENTS),
            NUM_ROUNDS,
            seed=seed,
            crash_rate=0.05,
            corrupt_rate=0.15,
            flaky_rate=0.1,
            kill_rounds=kills,
        )

    _, ref_sim = build_sim(seed, fault_plan=plan(), retry_policy=RetryPolicy())
    reference = ref_sim.run(NUM_ROUNDS)
    kill_at = NUM_ROUNDS // 2
    journal = RoundJournal(str(tmp_path / "j"))
    _, victim = build_sim(
        seed, fault_plan=plan(kills={kill_at}), retry_policy=RetryPolicy()
    )
    with pytest.raises(ServerKilledError):
        victim.run(NUM_ROUNDS, journal=journal)
    _, survivor = build_sim(seed, fault_plan=plan(), retry_policy=RetryPolicy())
    resumed = survivor.run(NUM_ROUNDS, journal=journal)
    assert_records_equal(resumed, reference)
    assert survivor.fault_stats == ref_sim.fault_stats
    assert [
        (e.round_index, e.client_id) for e in survivor.server.quarantine
    ] == [(e.round_index, e.client_id) for e in ref_sim.server.quarantine]


def test_truncated_journal_is_reported_not_resumed(tmp_path):
    journal = RoundJournal(str(tmp_path))
    _, victim = build_sim(11, fault_plan=FaultPlan(server_kills={3}))
    with pytest.raises(ServerKilledError):
        victim.run(NUM_ROUNDS, journal=journal)
    truncate_file(journal.path, keep_fraction=0.3)
    with pytest.raises(RecordCorruptionError):
        journal.load()


# ----------------------------------------------------------------------
# corrupted clients
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", CHAOS_SEEDS)
def test_twenty_percent_corrupt_clients_are_quarantined(seed):
    """With 20% of (round, client) pairs corrupted the loop completes,
    every mangled update is quarantined as a dropout, and the model
    stays within noise of the clean run."""
    plan = FaultPlan.random(
        range(NUM_CLIENTS), NUM_ROUNDS, seed=seed, corrupt_rate=0.2
    )
    assert plan.counts()["corrupt"] > 0
    _, clean_sim = build_sim(seed, with_test_set=True)
    clean = clean_sim.run(NUM_ROUNDS)
    _, chaos_sim = build_sim(seed, with_test_set=True, fault_plan=plan)
    record = chaos_sim.run(NUM_ROUNDS)
    record.validate()
    quarantine = chaos_sim.server.quarantine
    assert len(quarantine) == chaos_sim.fault_stats["corrupted"]
    assert {(e.round_index, e.client_id) for e in quarantine} == {
        (t, c) for (t, c), f in plan.client_faults.items() if f.kind == "corrupt"
    }
    for event in quarantine:
        # Quarantined means dropped out: a member that round, no stored
        # gradient, not a participant.
        assert record.ledger.is_member(event.client_id, event.round_index)
        assert not record.ledger.participated(event.client_id, event.round_index)
        assert not record.gradients.has(event.round_index, event.client_id)
    drift = float(
        np.linalg.norm(record.final_params() - clean.final_params())
    ) / float(np.linalg.norm(clean.final_params()))
    assert drift < 0.25, f"corrupt run drifted {drift:.1%} from the clean run"
    assert record.accuracy_history[-1] >= clean.accuracy_history[-1] - 0.15


def test_all_quarantined_round_degrades_to_skip():
    """A round in which every update is garbage must not move the model."""
    server = RsuServer(
        initial_params=np.zeros(16),
        learning_rate=0.1,
        gradient_store=FullGradientStore(),
        validator=UpdateValidator(),
    )
    for cid in range(3):
        server.register_client(cid, 10, join_round=0)
    before = server.params.copy()
    server.run_round({cid: np.full(16, np.nan) for cid in range(3)})
    np.testing.assert_array_equal(server.params, before)
    assert server.round_index == 1
    assert len(server.quarantine) == 3


# ----------------------------------------------------------------------
# property: structurally invalid updates never move the aggregate
# ----------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(
    mode=st.sampled_from(["nan", "inf", "shape"]),
    corruption_seed=st.integers(0, 2**31 - 1),
    bad_clients=st.sets(st.sampled_from([0, 1, 2, 3]), min_size=1, max_size=2),
)
def test_structurally_invalid_updates_never_change_aggregate(
    mode, corruption_seed, bad_clients
):
    """However a NaN/Inf/mis-shaped update is drawn, the post-round
    parameters equal those of a round fed only the clean updates."""
    dim = 32
    rng = np.random.default_rng(99)
    clean = {cid: rng.normal(size=dim) * 0.1 for cid in range(4)}

    def fresh_server():
        server = RsuServer(
            initial_params=np.linspace(0, 1, dim),
            learning_rate=0.05,
            gradient_store=FullGradientStore(),
            validator=UpdateValidator(),
        )
        for cid in clean:
            server.register_client(cid, 10, join_round=0)
        return server

    corrupted = dict(clean)
    corruption_rng = np.random.default_rng(corruption_seed)
    for cid in bad_clients:
        corrupted[cid] = corrupt_update(clean[cid], mode, corruption_rng)

    attacked = fresh_server()
    attacked.run_round(corrupted)
    baseline = fresh_server()
    baseline.run_round({c: u for c, u in clean.items() if c not in bad_clients})
    np.testing.assert_array_equal(attacked.params, baseline.params)
    assert {e.client_id for e in attacked.quarantine} == bad_clients


# ----------------------------------------------------------------------
# disk rot
# ----------------------------------------------------------------------
class TestDamagedRecords:
    @pytest.fixture(scope="class")
    def saved(self, tmp_path_factory):
        _, sim = build_sim(CHAOS_SEEDS[0], store="full")
        record = sim.run(NUM_ROUNDS)
        path = tmp_path_factory.mktemp("records") / "rec"
        save_record(record, str(path))
        return str(path)

    def _copy(self, saved, tmp_path):
        import shutil

        dst = tmp_path / "rec"
        shutil.copytree(saved, dst)
        return str(dst)

    def test_intact_record_loads(self, saved):
        load_record(saved).validate()

    @pytest.mark.parametrize("victim", ["gradients.npz", "checkpoints.npz"])
    def test_truncated_arrays_raise_corruption_error(self, saved, tmp_path, victim):
        path = self._copy(saved, tmp_path)
        truncate_file(os.path.join(path, victim), keep_fraction=0.4)
        with pytest.raises(RecordCorruptionError, match=victim):
            load_record(path)

    def test_truncated_manifest_raises_corruption_error(self, saved, tmp_path):
        path = self._copy(saved, tmp_path)
        truncate_file(os.path.join(path, "manifest.json"), keep_fraction=0.5)
        with pytest.raises(RecordCorruptionError, match="manifest.json"):
            load_record(path)

    def test_bitrotted_npz_entry_raises_corruption_error(self, saved, tmp_path):
        path = self._copy(saved, tmp_path)
        corrupt_npz_entry(
            os.path.join(path, "checkpoints.npz"), "w_0", np.random.default_rng(5)
        )
        with pytest.raises(RecordCorruptionError):
            load_record(path)

    def test_missing_record_still_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_record(str(tmp_path / "never-saved"))

    def test_interrupted_save_leaves_no_half_record(self, saved, tmp_path):
        """save_record stages then commits manifest-last: a directory
        without a manifest reads as absent, never as a broken record."""
        record = load_record(saved)
        target = tmp_path / "fresh"
        save_record(record, str(target))
        os.remove(target / "manifest.json")  # simulate dying pre-commit
        with pytest.raises(FileNotFoundError):
            load_record(str(target))
        save_record(record, str(target))  # a rerun completes the save
        load_record(str(target)).validate()


# ----------------------------------------------------------------------
# recovery resilience
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", CHAOS_SEEDS)
def test_recovery_resumes_from_checkpoint_bitwise(seed, tmp_path):
    model, sim = build_sim(seed)
    record = sim.run(NUM_ROUNDS)
    reference = SignRecoveryUnlearner().unlearn(record, forget_ids=[2], model=model)

    class Killed(RuntimeError):
        pass

    def die_midway(t, params):
        if t >= NUM_ROUNDS // 2:
            raise Killed

    victim = SignRecoveryUnlearner(
        round_callback=die_midway, checkpoint_dir=str(tmp_path), checkpoint_every=2
    )
    with pytest.raises(Killed):
        victim.unlearn(record, forget_ids=[2], model=model)
    assert os.path.exists(tmp_path / "recovery.npz")

    survivor = SignRecoveryUnlearner(checkpoint_dir=str(tmp_path), checkpoint_every=2)
    result = survivor.unlearn(record, forget_ids=[2], model=model)
    assert result.stats["resumed_from"] is not None
    np.testing.assert_array_equal(result.params, reference.params)
    assert not os.path.exists(tmp_path / "recovery.npz")  # cleaned up


def test_recovery_checkpoint_refuses_mismatched_request(tmp_path):
    model, sim = build_sim(13)
    record = sim.run(NUM_ROUNDS)

    class Killed(RuntimeError):
        pass

    def die(t, params):
        raise Killed

    victim = SignRecoveryUnlearner(
        round_callback=die, checkpoint_dir=str(tmp_path), checkpoint_every=1
    )
    with pytest.raises(Killed):
        victim.unlearn(record, forget_ids=[2], model=model)
    other = SignRecoveryUnlearner(checkpoint_dir=str(tmp_path))
    with pytest.raises(ValueError, match="different request"):
        other.unlearn(record, forget_ids=[3], model=model)


def test_recovery_tolerates_missing_gradient_entries():
    """Entries lost to disk rot are skipped and counted, like a
    historical dropout — recovery still completes."""
    model, sim = build_sim(17, store="full")
    record = sim.run(NUM_ROUNDS)
    pruned_store = FullGradientStore()
    removed = 0
    for (t, cid), gradient in record.gradients.items():
        if t >= 2 and cid == 1 and removed < 3:
            removed += 1
            continue
        pruned_store.put(t, cid, gradient)
    pruned = type(record)(
        checkpoints=record.checkpoints,
        gradients=pruned_store,
        ledger=record.ledger,
        client_sizes=record.client_sizes,
        num_rounds=record.num_rounds,
        learning_rate=record.learning_rate,
        aggregator=record.aggregator,
        accuracy_history=record.accuracy_history,
    )
    result = SignRecoveryUnlearner().unlearn(pruned, forget_ids=[2], model=model)
    assert result.stats["missing_entries"] == removed
    assert np.isfinite(result.params).all()
