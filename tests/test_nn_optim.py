"""Tests for repro.nn.optim.SGD."""

import numpy as np
import pytest

from repro.nn import SGD


class TestSGD:
    def test_plain_step(self):
        opt = SGD(lr=0.1)
        params = np.array([1.0, 2.0])
        grad = np.array([1.0, -1.0])
        np.testing.assert_allclose(opt.step(params, grad), [0.9, 2.1])

    def test_does_not_mutate_inputs(self):
        opt = SGD(lr=0.1)
        params = np.array([1.0])
        grad = np.array([1.0])
        opt.step(params, grad)
        assert params[0] == 1.0 and grad[0] == 1.0

    def test_weight_decay(self):
        opt = SGD(lr=0.1, weight_decay=0.5)
        out = opt.step(np.array([2.0]), np.array([0.0]))
        np.testing.assert_allclose(out, [2.0 - 0.1 * 0.5 * 2.0])

    def test_momentum_accumulates(self):
        opt = SGD(lr=1.0, momentum=0.9)
        p = np.array([0.0])
        g = np.array([1.0])
        p1 = opt.step(p, g)  # v = 1 -> p = -1
        p2 = opt.step(p1, g)  # v = 1.9 -> p = -2.9
        assert p1[0] == pytest.approx(-1.0)
        assert p2[0] == pytest.approx(-2.9)

    def test_reset_clears_momentum(self):
        opt = SGD(lr=1.0, momentum=0.9)
        opt.step(np.array([0.0]), np.array([1.0]))
        opt.reset()
        out = opt.step(np.array([0.0]), np.array([1.0]))
        assert out[0] == pytest.approx(-1.0)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            SGD(lr=0.1).step(np.zeros(2), np.zeros(3))

    @pytest.mark.parametrize("kwargs", [
        {"lr": 0.0}, {"lr": -1.0},
        {"lr": 0.1, "momentum": 1.0}, {"lr": 0.1, "momentum": -0.1},
        {"lr": 0.1, "weight_decay": -1.0},
    ])
    def test_invalid_hyperparameters(self, kwargs):
        with pytest.raises(ValueError):
            SGD(**kwargs)

    def test_converges_on_quadratic(self):
        """SGD minimizes 0.5||x - target||^2."""
        target = np.array([3.0, -2.0])
        x = np.zeros(2)
        opt = SGD(lr=0.2)
        for _ in range(100):
            x = opt.step(x, x - target)
        np.testing.assert_allclose(x, target, atol=1e-6)
