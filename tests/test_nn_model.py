"""Tests for repro.nn.model.Sequential — flat params, gradients, predict."""

import numpy as np
import pytest

from repro.nn import Dense, Flatten, ReLU, Sequential, mlp, tiny_cnn


@pytest.fixture
def small_model(rng):
    return Sequential([Dense(6, 8, rng), ReLU(), Dense(8, 3, rng)])


class TestFlatParams:
    def test_round_trip(self, small_model, rng):
        w = small_model.get_flat_params()
        new = rng.normal(size=w.shape)
        small_model.set_flat_params(new)
        np.testing.assert_allclose(small_model.get_flat_params(), new)

    def test_num_params(self, small_model):
        assert small_model.num_params == 6 * 8 + 8 + 8 * 3 + 3

    def test_get_returns_copy(self, small_model):
        w = small_model.get_flat_params()
        w[:] = 0
        assert small_model.get_flat_params().any()

    def test_set_wrong_size_raises(self, small_model):
        with pytest.raises(ValueError):
            small_model.set_flat_params(np.zeros(3))

    def test_set_does_not_change_behaviour_when_identical(self, small_model, rng):
        x = rng.normal(size=(4, 6))
        before = small_model.forward(x, training=False)
        small_model.set_flat_params(small_model.get_flat_params())
        np.testing.assert_allclose(small_model.forward(x, training=False), before)


class TestLossAndGrad:
    def test_gradient_matches_numerical(self, small_model, rng):
        x = rng.normal(size=(5, 6))
        y = rng.integers(0, 3, size=5)
        _, grad = small_model.loss_and_flat_grad(x, y)
        w = small_model.get_flat_params()
        eps = 1e-6
        for i in rng.choice(w.size, size=15, replace=False):
            wp = w.copy()
            wp[i] += eps
            small_model.set_flat_params(wp)
            up = small_model.evaluate_loss(x, y)
            wp[i] -= 2 * eps
            small_model.set_flat_params(wp)
            down = small_model.evaluate_loss(x, y)
            numeric = (up - down) / (2 * eps)
            assert grad[i] == pytest.approx(numeric, abs=1e-5)
        small_model.set_flat_params(w)

    def test_loss_decreases_with_sgd(self, small_model, rng):
        x = rng.normal(size=(32, 6))
        y = (x[:, 0] > 0).astype(np.int64)
        first, _ = small_model.loss_and_flat_grad(x, y)
        for _ in range(60):
            loss, grad = small_model.loss_and_flat_grad(x, y)
            small_model.set_flat_params(small_model.get_flat_params() - 0.5 * grad)
        assert loss < first

    def test_cnn_gradient_matches_numerical(self, rng):
        model = tiny_cnn(np.random.default_rng(3))
        x = rng.random((3, 1, 12, 12))
        y = rng.integers(0, 4, size=3)
        _, grad = model.loss_and_flat_grad(x, y)
        w = model.get_flat_params()
        eps = 1e-6
        for i in rng.choice(w.size, size=10, replace=False):
            wp = w.copy()
            wp[i] += eps
            model.set_flat_params(wp)
            up = model.evaluate_loss(x, y)
            wp[i] -= 2 * eps
            model.set_flat_params(wp)
            down = model.evaluate_loss(x, y)
            assert grad[i] == pytest.approx((up - down) / (2 * eps), abs=1e-5)


class TestPredict:
    def test_predict_shape(self, small_model, rng):
        preds = small_model.predict(rng.normal(size=(7, 6)))
        assert preds.shape == (7,)
        assert preds.dtype.kind == "i"

    def test_predict_proba_rows_sum_to_one(self, small_model, rng):
        probs = small_model.predict_proba(rng.normal(size=(7, 6)))
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(7))

    def test_predict_batched_matches_unbatched(self, small_model, rng):
        x = rng.normal(size=(10, 6))
        np.testing.assert_array_equal(
            small_model.predict(x, batch_size=3), small_model.predict(x, batch_size=100)
        )

    def test_empty_raises(self, small_model):
        with pytest.raises(ValueError):
            small_model.predict_proba(np.zeros((0, 6)))

    def test_bad_batch_size(self, small_model, rng):
        with pytest.raises(ValueError):
            small_model.predict_proba(rng.normal(size=(4, 6)), batch_size=0)


class TestEvaluateLoss:
    def test_matches_forward_loss(self, small_model, rng):
        x = rng.normal(size=(9, 6))
        y = rng.integers(0, 3, size=9)
        logits = small_model.forward(x, training=False)
        expected = small_model.loss.loss_only(logits, y)
        assert small_model.evaluate_loss(x, y, batch_size=4) == pytest.approx(expected)

    def test_empty_raises(self, small_model):
        with pytest.raises(ValueError):
            small_model.evaluate_loss(np.zeros((0, 6)), np.zeros(0, dtype=int))


class TestConstruction:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            Sequential([])

    def test_layer_summary_mentions_params(self, small_model):
        summary = small_model.layer_summary()
        assert str(small_model.num_params) in summary

    def test_len_and_iter(self, small_model):
        assert len(small_model) == 3
        assert len(list(small_model)) == 3

    def test_mlp_factory_shapes(self, rng):
        model = mlp(rng, in_features=20, num_classes=4, hidden=10, depth=2)
        assert model.forward(rng.normal(size=(2, 4, 5)), training=False).shape == (2, 4)

    def test_mlp_depth_validation(self, rng):
        with pytest.raises(ValueError):
            mlp(rng, 10, 2, depth=0)
