"""Round-trip tests for TrainingRecord disk persistence."""

import numpy as np
import pytest

from repro.fl import with_sign_store
from repro.fl import load_record, save_record
from repro.unlearning import SignRecoveryUnlearner


class TestFullStoreRoundTrip:
    def test_round_trip_equality(self, small_fl, tmp_path):
        record = small_fl["record"]
        save_record(record, str(tmp_path / "rec"))
        loaded = load_record(str(tmp_path / "rec"))
        loaded.validate()
        assert loaded.num_rounds == record.num_rounds
        assert loaded.learning_rate == record.learning_rate
        assert loaded.client_sizes == record.client_sizes
        np.testing.assert_array_equal(loaded.final_params(), record.final_params())
        t = record.num_rounds // 2
        for cid in record.gradients.clients_at(t):
            np.testing.assert_array_equal(
                loaded.gradients.get(t, cid), record.gradients.get(t, cid)
            )

    def test_ledger_round_trip(self, small_fl, tmp_path):
        record = small_fl["record"]
        save_record(record, str(tmp_path / "rec"))
        loaded = load_record(str(tmp_path / "rec"))
        assert loaded.ledger.known_clients() == record.ledger.known_clients()
        assert loaded.ledger.join_round(5) == record.ledger.join_round(5)


class TestSignStoreRoundTrip:
    def test_round_trip_preserves_directions(self, small_fl, tmp_path):
        sign_record = with_sign_store(small_fl["record"], delta=1e-6)
        save_record(sign_record, str(tmp_path / "sign"))
        loaded = load_record(str(tmp_path / "sign"))
        loaded.validate()
        assert loaded.gradients.delta == 1e-6
        t = sign_record.num_rounds // 2
        for cid in sign_record.gradients.clients_at(t):
            np.testing.assert_array_equal(
                loaded.gradients.get(t, cid), sign_record.gradients.get(t, cid)
            )

    def test_unlearning_from_loaded_record(self, small_fl, tmp_path):
        """The whole point: a server restart must not block unlearning."""
        sign_record = with_sign_store(small_fl["record"], delta=1e-6)
        save_record(sign_record, str(tmp_path / "sign"))
        loaded = load_record(str(tmp_path / "sign"))
        fresh = SignRecoveryUnlearner(clip_threshold=5.0).unlearn(
            loaded, [5], small_fl["model"]
        )
        original = SignRecoveryUnlearner(clip_threshold=5.0).unlearn(
            sign_record, [5], small_fl["model"]
        )
        np.testing.assert_allclose(fresh.params, original.params, atol=1e-5)


class TestErrors:
    def test_unknown_format_version(self, small_fl, tmp_path):
        from repro.utils.serialization import load_json, save_json

        save_record(small_fl["record"], str(tmp_path / "rec"))
        manifest_path = tmp_path / "rec" / "manifest.json"
        manifest = load_json(str(manifest_path))
        manifest["format_version"] = 99
        save_json(str(manifest_path), manifest)
        with pytest.raises(ValueError):
            load_record(str(tmp_path / "rec"))

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_record(str(tmp_path / "nothing"))
