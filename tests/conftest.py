"""Shared fixtures for the test suite.

The heavier fixtures (a trained federated record) are session-scoped:
many unlearning tests share one small training run, which keeps the
suite fast while still exercising the real pipeline.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import ArrayDataset, make_synthetic_mnist, partition_iid, train_test_split
from repro.fl import FederatedSimulation, ParticipationSchedule, VehicleClient
from repro.nn import mlp
from repro.storage import FullGradientStore
from repro.utils.rng import SeedSequenceTree


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def tiny_dataset(rng) -> ArrayDataset:
    """64 random 2-class samples with 8 features."""
    x = rng.normal(size=(64, 8))
    y = (x[:, 0] > 0).astype(np.int64)
    return ArrayDataset(x=x, y=y, num_classes=2, name="tiny")


SMALL_IMAGE = 14
SMALL_FEATURES = SMALL_IMAGE * SMALL_IMAGE


def _make_small_fl(seed: int = 77, num_rounds: int = 40, forget_join: int = 2):
    """A small but real FL setup: 6 clients, MNIST-like 14x14, MLP."""
    tree = SeedSequenceTree(seed)
    data = make_synthetic_mnist(900, tree.rng("data"), image_size=SMALL_IMAGE)
    train, test = train_test_split(data, 0.2, tree.rng("split"))
    shards = partition_iid(train, 6, tree.rng("part"))
    clients = [
        VehicleClient(i, shards[i], tree.rng(f"client{i}"), batch_size=32)
        for i in range(6)
    ]
    model = mlp(tree.rng("model"), SMALL_FEATURES, 10, hidden=24)

    def factory():
        return mlp(tree.rng("model"), SMALL_FEATURES, 10, hidden=24)

    schedule = ParticipationSchedule.with_events(range(6), joins={5: forget_join})
    sim = FederatedSimulation(
        model,
        clients,
        learning_rate=2e-3,
        schedule=schedule,
        gradient_store=FullGradientStore(),
        test_set=test,
        eval_every=1000,
    )
    record = sim.run(num_rounds)
    return {
        "record": record,
        "model": model,
        "factory": factory,
        "clients": {c.client_id: c for c in clients},
        "test": test,
        "train": train,
        "forget_id": 5,
        "forget_join": forget_join,
        "tree": tree,
    }


@pytest.fixture(scope="session")
def small_fl():
    """Session-scoped trained FL run shared by unlearning tests.

    Tests must not mutate the record; the model's parameters may be
    overwritten freely (every consumer sets them before use).
    """
    return _make_small_fl()
