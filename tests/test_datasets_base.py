"""Tests for repro.datasets.base — ArrayDataset and splitting."""

import numpy as np
import pytest

from repro.datasets import ArrayDataset, train_test_split


@pytest.fixture
def dataset(rng):
    return ArrayDataset(
        x=rng.normal(size=(30, 2, 4, 4)),
        y=rng.integers(0, 3, size=30),
        num_classes=3,
    )


class TestConstruction:
    def test_len(self, dataset):
        assert len(dataset) == 30

    def test_mismatched_lengths_raise(self, rng):
        with pytest.raises(ValueError):
            ArrayDataset(x=rng.normal(size=(5, 2)), y=np.zeros(4, dtype=int), num_classes=2)

    def test_label_out_of_range_raises(self, rng):
        with pytest.raises(ValueError):
            ArrayDataset(x=rng.normal(size=(3, 2)), y=np.array([0, 1, 5]), num_classes=3)

    def test_negative_label_raises(self, rng):
        with pytest.raises(ValueError):
            ArrayDataset(x=rng.normal(size=(2, 2)), y=np.array([0, -1]), num_classes=2)

    def test_2d_labels_raise(self, rng):
        with pytest.raises(ValueError):
            ArrayDataset(x=rng.normal(size=(2, 2)), y=np.zeros((2, 1), dtype=int), num_classes=2)


class TestSubset:
    def test_selects_rows(self, dataset):
        sub = dataset.subset([0, 2, 4])
        assert len(sub) == 3
        np.testing.assert_array_equal(sub.y, dataset.y[[0, 2, 4]])

    def test_copies(self, dataset):
        sub = dataset.subset([0])
        sub.x[0] = 0.0
        assert dataset.x[0].any()


class TestClassCounts:
    def test_sums_to_len(self, dataset):
        assert dataset.class_counts().sum() == len(dataset)

    def test_length(self, dataset):
        assert dataset.class_counts().shape == (3,)


class TestBatches:
    def test_covers_all_samples(self, dataset):
        seen = sum(xb.shape[0] for xb, _ in dataset.batches(7))
        assert seen == len(dataset)

    def test_drop_last(self, dataset):
        batches = list(dataset.batches(7, drop_last=True))
        assert all(xb.shape[0] == 7 for xb, _ in batches)

    def test_shuffle_changes_order(self, dataset, rng):
        first = next(iter(dataset.batches(30, rng=rng)))[1]
        assert not np.array_equal(first, dataset.y)
        np.testing.assert_array_equal(np.sort(first), np.sort(dataset.y))

    def test_invalid_batch_size(self, dataset):
        with pytest.raises(ValueError):
            list(dataset.batches(0))


class TestSampleBatch:
    def test_shape(self, dataset, rng):
        xb, yb = dataset.sample_batch(8, rng)
        assert xb.shape[0] == 8 and yb.shape == (8,)

    def test_capped_at_dataset_size(self, dataset, rng):
        xb, _ = dataset.sample_batch(999, rng)
        assert xb.shape[0] == len(dataset)

    def test_empty_raises(self, rng):
        empty = ArrayDataset(np.zeros((0, 2)), np.zeros(0, dtype=int), num_classes=2)
        with pytest.raises(ValueError):
            empty.sample_batch(4, rng)


class TestMerge:
    def test_concatenates(self, dataset):
        merged = dataset.merged_with(dataset)
        assert len(merged) == 60

    def test_class_mismatch_raises(self, dataset, rng):
        other = ArrayDataset(rng.normal(size=(4, 2, 4, 4)), np.zeros(4, dtype=int), num_classes=5)
        with pytest.raises(ValueError):
            dataset.merged_with(other)

    def test_shape_mismatch_raises(self, dataset, rng):
        other = ArrayDataset(rng.normal(size=(4, 7)), np.zeros(4, dtype=int), num_classes=3)
        with pytest.raises(ValueError):
            dataset.merged_with(other)


class TestTrainTestSplit:
    def test_partition_sizes(self, dataset, rng):
        train, test = train_test_split(dataset, 0.2, rng)
        assert len(train) + len(test) == len(dataset)
        assert len(test) == 6

    def test_disjoint(self, dataset, rng):
        """No sample appears in both splits (checked via unique rows)."""
        train, test = train_test_split(dataset, 0.3, rng)
        train_flat = {t.tobytes() for t in train.x}
        test_flat = {t.tobytes() for t in test.x}
        assert not train_flat & test_flat

    def test_invalid_fraction(self, dataset, rng):
        with pytest.raises(ValueError):
            train_test_split(dataset, 0.0, rng)
        with pytest.raises(ValueError):
            train_test_split(dataset, 1.0, rng)
