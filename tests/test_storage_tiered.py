"""Tiered sign store: bounded memory, tier lifecycle, end-to-end identity.

The contract under test (`docs/ARCHITECTURE.md`, "Storage tiering"):

- ingestion is bounded-memory — the hot tier never exceeds its byte
  budget once a round can spill, in sync and background mode alike;
- every tier transition (hot→warm spill, warm→cold demotion,
  compaction, reopen) preserves reads bit-for-bit;
- ``drop_client`` tombstones are durable and compaction physically
  reclaims their bytes;
- the replay/forest read path through a tiered record is byte-identical
  to the dict store — across a FaultPlan run and after persist/open —
  and ``ErasureDaemon`` traffic is served correctly mid-compaction;
- a ≤5k-client synthetic sweep (the tier-1 smoke version of
  ``make bench-storage-scale``) holds the capacity model's bounds.
"""

import threading

import numpy as np
import pytest

from repro.faults import ClientFault, FaultPlan
from repro.fl import with_sign_store
from repro.fl.persistence import load_record, save_record, store_to_arrays
from repro.serving.daemon import ErasureDaemon
from repro.storage import SignGradientStore, TieredSignGradientStore
from repro.storage.tiered import TIER_COLD, TIER_HOT, TIER_WARM
from repro.unlearning import SignRecoveryUnlearner, UnlearningService

from tests.test_service_cache import CLIP, build_record

DELTA = 1e-6
DIM = 57


def _fill(store, rng, num_rounds=6, cohort=5, dim=DIM, scale=1e-3):
    """Identical rounds into ``store`` and a dict reference; returns it."""
    reference = SignGradientStore(delta=DELTA)
    for t in range(num_rounds):
        updates = {
            int(c): rng.normal(size=dim) * scale for c in range(1, cohort + 1)
        }
        reference.put_round(t, updates)
        store.put_round(t, updates)
    return reference


def _assert_same_view(reference, store):
    assert store.rounds() == reference.rounds()
    for t in reference.rounds():
        assert store.clients_at(t) == reference.clients_at(t)
        bulk = store.get_round(t)
        expected = reference.get_round(t)
        assert sorted(bulk) == sorted(expected)
        for cid in expected:
            np.testing.assert_array_equal(bulk[cid], expected[cid])
            np.testing.assert_array_equal(store.get(t, cid), reference.get(t, cid))


class TestBoundedIngestion:
    def test_hot_tier_respects_budget(self, rng, tmp_path):
        budget = 256
        store = TieredSignGradientStore(
            str(tmp_path / "t"), delta=DELTA, hot_budget_bytes=budget
        )
        reference = SignGradientStore(delta=DELTA)
        for t in range(10):
            updates = {int(c): rng.normal(size=DIM) for c in range(1, 6)}
            reference.put_round(t, updates)
            store.put_round(t, updates)
            # each round is sealed on commit, so the budget holds at
            # every step — this is the bounded-memory guarantee
            assert store.tier_bytes()[TIER_HOT] <= budget
        assert store.tier_rounds()[TIER_WARM] > 0
        _assert_same_view(reference, store)

    def test_unsealed_round_stays_hot_under_budget(self, rng, tmp_path):
        store = TieredSignGradientStore(
            str(tmp_path / "t"), delta=DELTA, hot_budget_bytes=1 << 20
        )
        store.put(3, 1, rng.normal(size=DIM))
        assert store.tier_rounds()[TIER_HOT] == 1
        assert store.tier_rounds()[TIER_WARM] == 0

    def test_oversized_single_round_spills_last_resort(self, rng, tmp_path):
        # one in-flight round bigger than the whole budget cannot be
        # held hot; it spills mid-round and later writes overlay it
        store = TieredSignGradientStore(
            str(tmp_path / "t"), delta=DELTA, hot_budget_bytes=32
        )
        reference = SignGradientStore(delta=DELTA)
        for cid in range(1, 8):
            g = rng.normal(size=DIM)
            reference.put(0, cid, g)
            store.put(0, cid, g)
        assert store.tier_bytes()[TIER_HOT] <= 32
        _assert_same_view(reference, store)

    def test_background_spill_mode(self, rng, tmp_path):
        store = TieredSignGradientStore(
            str(tmp_path / "t"),
            delta=DELTA,
            hot_budget_bytes=256,
            spill_mode="background",
        )
        reference = _fill(store, rng, num_rounds=8)
        store.flush()  # deterministic drain for the assertion
        assert store.tier_rounds()[TIER_HOT] == 0
        _assert_same_view(reference, store)
        store.close()

    def test_background_spill_does_not_block_writers(self, rng, tmp_path):
        # the whole point of spill_mode="background": while the spill
        # thread is parked inside shard file I/O, a writer must get in
        # and out of put() without waiting for the disk
        store = TieredSignGradientStore(
            str(tmp_path / "t"),
            delta=DELTA,
            hot_budget_bytes=1024,
            spill_mode="background",
        )
        entered = threading.Event()
        gate = threading.Event()

        def park_in_io(point):
            if point == "after-shard-write":
                entered.set()
                gate.wait(timeout=30)

        store._crash_hook = park_in_io
        # ~75 B/round: 15 rounds exceed the 1 KiB budget (waking the
        # spiller) but stay under the 2 KiB hard cap (no inline spill)
        reference = _fill(store, rng, num_rounds=15)
        assert entered.wait(timeout=30), "background spill never started"

        done = threading.Event()
        extra = rng.normal(size=DIM)

        def write():
            reference.put(99, 1, extra)
            store.put(99, 1, extra)
            done.set()

        writer = threading.Thread(target=write)
        writer.start()
        try:
            assert done.wait(timeout=10), (
                "put() blocked behind an in-flight background spill"
            )
        finally:
            gate.set()
            store._crash_hook = None
            writer.join(timeout=10)
        store.flush()
        assert store.tier_rounds()[TIER_HOT] == 0
        _assert_same_view(reference, store)
        store.close()

    def test_overlay_respill(self, rng, tmp_path):
        # write to a round that already spilled: the hot overlay wins
        # immediately and the next spill folds it into the shard row
        store = TieredSignGradientStore(str(tmp_path / "t"), delta=DELTA)
        reference = _fill(store, rng)
        store.flush()
        g = rng.normal(size=DIM)
        reference.put(0, 3, g)
        store.put(0, 3, g)
        np.testing.assert_array_equal(store.get(0, 3), reference.get(0, 3))
        store.flush()
        assert store.tier_rounds()[TIER_HOT] == 0
        _assert_same_view(reference, store)


class TestTombstonesAndCompaction:
    def test_drop_is_durable_and_compaction_reclaims(self, rng, tmp_path):
        directory = str(tmp_path / "t")
        store = TieredSignGradientStore(directory, delta=DELTA)
        reference = _fill(store, rng)
        store.flush()
        reference.drop_client(2)
        assert store.drop_client(2) > 0
        _assert_same_view(reference, store)

        reopened = TieredSignGradientStore.open(directory)
        _assert_same_view(reference, reopened)

        disk_before = reopened.disk_bytes()
        stats = reopened.compact()
        assert stats["reclaimed_bytes"] > 0
        assert reopened.disk_bytes() < disk_before
        _assert_same_view(reference, reopened)

    def test_drop_after_hot_overlay_is_durable(self, rng, tmp_path):
        # overlaying a durable row deletes its index entry in memory
        # only; dropping the client right after must still tombstone
        # the durable bytes — a restart before the round respills used
        # to resurrect them
        directory = str(tmp_path / "t")
        store = TieredSignGradientStore(directory, delta=DELTA)
        reference = _fill(store, rng)
        store.flush()
        g = rng.normal(size=DIM)
        reference.put(0, 2, g)
        store.put(0, 2, g)
        reference.drop_client(2)
        assert store.drop_client(2) > 0
        _assert_same_view(reference, store)
        # simulated crash before the overlay respills: only durable
        # state survives, and it must not contain client 2
        reopened = TieredSignGradientStore.open(directory)
        assert not reopened.has(0, 2)
        for t in reopened.rounds():
            assert 2 not in reopened.clients_at(t)

    def test_drop_reput_drop_again_is_durable(self, rng, tmp_path):
        # drop → re-put (resurrects the pair in memory) → an unrelated
        # drop rewrites the sidecar without the pair → drop again while
        # the re-put is still hot-only.  The second drop must restore
        # the tombstone or a restart resurrects the original row.
        directory = str(tmp_path / "t")
        store = TieredSignGradientStore(directory, delta=DELTA)
        reference = _fill(store, rng)
        store.flush()
        reference.drop_client(2)
        store.drop_client(2)
        g = rng.normal(size=DIM)
        reference.put(1, 2, g)
        store.put(1, 2, g)
        reference.drop_client(4)
        store.drop_client(4)
        reference.drop_client(2)
        store.drop_client(2)
        _assert_same_view(reference, store)
        reopened = TieredSignGradientStore.open(directory)
        for t in reopened.rounds():
            assert 2 not in reopened.clients_at(t)
            assert 4 not in reopened.clients_at(t)

    def test_reput_after_drop_survives_spill_and_reopen(self, rng, tmp_path):
        directory = str(tmp_path / "t")
        store = TieredSignGradientStore(directory, delta=DELTA)
        reference = _fill(store, rng)
        store.flush()
        reference.drop_client(2)
        store.drop_client(2)
        g = rng.normal(size=DIM)
        reference.put(1, 2, g)
        store.put(1, 2, g)
        store.flush()
        _assert_same_view(reference, store)
        reopened = TieredSignGradientStore.open(directory)
        _assert_same_view(reference, reopened)
        assert reopened.has(1, 2) and not reopened.has(0, 2)

    def test_cold_demotion_preserves_reads_and_compresses(self, tmp_path):
        rng = np.random.default_rng(5)
        store = TieredSignGradientStore(str(tmp_path / "t"), delta=DELTA)
        # mostly sub-threshold elements → ternary codes are mostly the
        # zero symbol, which zlib compresses well past 2x
        reference = SignGradientStore(delta=DELTA)
        for t in range(8):
            updates = {}
            for c in range(1, 9):
                g = rng.normal(size=512) * 1e-3
                g[rng.random(512) < 0.9] = 0.0
                updates[int(c)] = g
            reference.put_round(t, updates)
            store.put_round(t, updates)
        store.flush()
        stats = store.compact(cold_after=3)
        assert stats["demoted"] > 0
        assert store.tier_rounds()[TIER_COLD] > 0
        assert store.tier_rounds()[TIER_WARM] > 0
        assert store.cold_compression_ratio() >= 2.0
        _assert_same_view(reference, store)
        # cold bytes count compressed: totals shrink but stay honest
        assert store.nbytes() == store.recount_nbytes()
        assert store.nbytes() < reference.nbytes()

    def test_constructor_cold_horizon_applies_on_compact(self, rng, tmp_path):
        store = TieredSignGradientStore(
            str(tmp_path / "t"), delta=DELTA, cold_after=2
        )
        reference = _fill(store, rng)
        store.flush()
        store.compact()
        assert store.tier_rounds()[TIER_COLD] > 0
        _assert_same_view(reference, store)


class TestPersistence:
    def test_store_to_arrays_emits_sign_kind(self, rng, tmp_path):
        store = TieredSignGradientStore(str(tmp_path / "t"), delta=DELTA)
        reference = _fill(store, rng)
        store.flush()
        store.compact(cold_after=2)
        kind, arrays, lengths, delta = store_to_arrays(store)
        ref_kind, ref_arrays, ref_lengths, ref_delta = store_to_arrays(reference)
        assert kind == ref_kind == "sign"
        assert delta == ref_delta and lengths == ref_lengths
        assert set(arrays) == set(ref_arrays)
        for name in arrays:
            np.testing.assert_array_equal(arrays[name], ref_arrays[name])

    def test_record_round_trip(self, small_fl, tmp_path):
        tiered_record = with_sign_store(
            small_fl["record"], backend="tiered", directory=str(tmp_path / "layout")
        )
        assert isinstance(tiered_record.gradients, TieredSignGradientStore)
        save_record(tiered_record, str(tmp_path / "saved"))
        loaded = load_record(str(tmp_path / "saved"))
        _assert_same_view(loaded.gradients, tiered_record.gradients)

    def test_native_reopen_matches(self, small_fl, tmp_path):
        directory = str(tmp_path / "layout")
        tiered_record = with_sign_store(
            small_fl["record"], backend="tiered", directory=directory
        )
        dict_record = with_sign_store(small_fl["record"], backend="dict")
        reopened = TieredSignGradientStore.open(directory)
        _assert_same_view(dict_record.gradients, reopened)


# ----------------------------------------------------------------------
# end-to-end: replay identity and daemon traffic
# ----------------------------------------------------------------------
#: Non-fatal upload crashes during training, so the record has genuine
#: dropouts for the tiered replay to skip over (same idiom as
#: tests/test_service_cache.py).
FAULT_PLAN = FaultPlan(
    client_faults={
        (4, 1): ClientFault("crash"),
        (7, 3): ClientFault("crash"),
    },
    seed=99,
)


class TestReplayIdentity:
    def test_recovery_matches_dict_store_under_faults(self, tmp_path):
        seed = 13
        dict_record, model = build_record(seed, fault_plan=FAULT_PLAN)
        tiered_record, _ = build_record(
            seed,
            fault_plan=FAULT_PLAN,
            backend="tiered",
            directory=str(tmp_path / "layout"),
        )
        assert isinstance(tiered_record.gradients, TieredSignGradientStore)
        unlearner = SignRecoveryUnlearner(clip_threshold=CLIP)
        expected = unlearner.unlearn(dict_record, [5], model)
        observed = unlearner.unlearn(tiered_record, [5], model)
        assert observed.params.tobytes() == expected.params.tobytes()
        assert observed.stats == expected.stats

    def test_recovery_matches_after_persist_open(self, tmp_path):
        seed = 13
        dict_record, model = build_record(seed)
        tiered_record, _ = build_record(
            seed, backend="tiered", directory=str(tmp_path / "layout")
        )
        save_record(tiered_record, str(tmp_path / "saved"))
        loaded = load_record(str(tmp_path / "saved"))
        unlearner = SignRecoveryUnlearner(clip_threshold=CLIP)
        expected = unlearner.unlearn(dict_record, [5, 6], model)
        observed = unlearner.unlearn(loaded, [5, 6], model)
        assert observed.params.tobytes() == expected.params.tobytes()

    def test_bulk_round_flag_feeds_replay(self, tmp_path):
        record, _ = build_record(
            21, backend="tiered", directory=str(tmp_path / "layout")
        )
        assert getattr(record.gradients, "supports_bulk_round", False)


class TestDaemonMidCompaction:
    def test_erasures_served_while_compacting(self, tmp_path):
        seed = 3
        dict_record, model = build_record(seed)
        tiered_record, tiered_model = build_record(
            seed, backend="tiered", directory=str(tmp_path / "layout")
        )
        store = tiered_record.gradients

        reference_service = UnlearningService(
            record=dict_record, model=model, clip_threshold=CLIP
        )
        expected = reference_service.handle_erasure_batch([5, 6, 7])

        service = UnlearningService(
            record=tiered_record, model=tiered_model, clip_threshold=CLIP
        )
        daemon = ErasureDaemon(service, capacity=8, workers=2).start()
        stop = threading.Event()
        compactions = []

        def churn():
            # alternate demote/promote horizons so every pass rewrites
            # the shard set while the daemon replays from it
            while not stop.is_set():
                for horizon in (2, None):
                    compactions.append(store.compact(cold_after=horizon))

        churner = threading.Thread(target=churn)
        churner.start()
        try:
            futures = [daemon.submit(cid) for cid in (5, 6, 7)]
            results = [f.result(timeout=120) for f in futures]
        finally:
            stop.set()
            churner.join()
            daemon.stop()

        assert [r.status for r in results] == ["ok", "ok", "ok"]
        for got, want in zip(results, expected):
            assert got.params.tobytes() == want.params.tobytes()
        assert compactions, "compaction thread never ran"


# ----------------------------------------------------------------------
# capacity smoke sweep — the tier-1 slice of `make bench-storage-scale`
# ----------------------------------------------------------------------
class TestCapacitySmoke:
    ROUNDS = 20
    COHORT = 250  # × ROUNDS = 5000 distinct clients, the smoke ceiling
    DIM = 64
    BUDGET = 8 * 1024

    def test_smoke_sweep_holds_capacity_model(self, tmp_path):
        rng = np.random.default_rng(17)
        store = TieredSignGradientStore(
            str(tmp_path / "scale"),
            delta=DELTA,
            hot_budget_bytes=self.BUDGET,
            cold_after=self.ROUNDS // 2,
        )
        sample = {}  # (round, client) -> gradient, spot-check corpus
        for t in range(self.ROUNDS):
            base = t * self.COHORT
            updates = {}
            for c in range(base, base + self.COHORT):
                g = rng.normal(size=self.DIM) * 1e-3
                g[rng.random(self.DIM) < 0.9] = 0.0
                updates[int(c)] = g
            store.put_round(t, updates)
            if t % 7 == 0:
                cid = base + 3
                sample[(t, cid)] = updates[cid]
            assert store.tier_bytes()[TIER_HOT] <= self.BUDGET
        store.flush()
        store.compact()

        stats = store.stats()
        assert stats["tier_rounds"][TIER_COLD] > 0
        assert store.cold_compression_ratio() >= 2.0
        # capacity model: a live row costs ceil(d/4) warm bytes
        expected_warm_row = (self.DIM + 3) // 4
        warm_rounds = stats["tier_rounds"][TIER_WARM]
        if warm_rounds:
            per_row = stats["tier_bytes"][TIER_WARM] / (warm_rounds * self.COHORT)
            assert per_row == expected_warm_row
        # reads stay index-backed and bitwise faithful at 5k clients
        reference = SignGradientStore(delta=DELTA)
        for (t, cid), g in sample.items():
            reference.put(t, cid, g)
            np.testing.assert_array_equal(store.get(t, cid), reference.get(t, cid))
        assert store.nbytes() == store.recount_nbytes()


class TestColdCache:
    """The cold-block decompression LRU: real counters, a real knob."""

    def _cold_store(self, tmp_path, rng, name, **kwargs):
        store = TieredSignGradientStore(
            str(tmp_path / name), delta=DELTA, hot_budget_bytes=64, **kwargs
        )
        reference = _fill(store, rng)
        store.flush()
        store.compact(cold_after=1)
        assert store.tier_rounds()[TIER_COLD] > 0
        return reference, store

    def test_counters_track_hits_misses(self, rng, tmp_path):
        reference, store = self._cold_store(tmp_path, rng, "cc")
        cold = [t for t in store.rounds() if t < store.rounds()[-1]]
        store.get_round(cold[0])   # miss: first inflate of the block
        store.get_round(cold[0])   # hit: cached block
        stats = store.stats()
        assert stats["cold_cache_misses"] >= 1
        assert stats["cold_cache_hits"] >= 1
        _assert_same_view(reference, store)

    def test_zero_blocks_disables_caching(self, rng, tmp_path):
        reference, store = self._cold_store(
            tmp_path, rng, "cc0", cold_cache_blocks=0
        )
        cold = [t for t in store.rounds() if t < store.rounds()[-1]]
        store.get_round(cold[0])
        store.get_round(cold[0])
        stats = store.stats()
        assert stats["cold_cache_blocks"] == 0
        assert stats["cold_cache_hits"] == 0
        assert stats["cold_cache_misses"] >= 2
        _assert_same_view(reference, store)

    def test_single_block_cache_evicts(self, rng, tmp_path):
        reference, store = self._cold_store(
            tmp_path, rng, "cc1", cold_cache_blocks=1
        )
        cold = [t for t in store.rounds() if t < store.rounds()[-1]]
        assert len(cold) >= 2
        store.get_round(cold[0])
        store.get_round(cold[1])  # evicts cold[0]'s block
        store.get_round(cold[0])  # miss again
        stats = store.stats()
        assert stats["cold_cache_evictions"] >= 1
        _assert_same_view(reference, store)

    def test_default_policy_reaches_constructor(self, rng, tmp_path):
        from repro.storage import (
            default_cold_cache_blocks,
            set_default_cold_cache_blocks,
        )

        previous = set_default_cold_cache_blocks(0)
        try:
            store = TieredSignGradientStore(
                str(tmp_path / "ccp"), delta=DELTA, hot_budget_bytes=64
            )
            assert store.cold_cache_blocks == 0
        finally:
            set_default_cold_cache_blocks(previous)
        assert default_cold_cache_blocks() == previous
        explicit = TieredSignGradientStore(
            str(tmp_path / "cce"), delta=DELTA, cold_cache_blocks=9
        )
        assert explicit.cold_cache_blocks == 9
        with pytest.raises(ValueError):
            TieredSignGradientStore(
                str(tmp_path / "ccn"), delta=DELTA, cold_cache_blocks=-1
            )
