"""Tests for repro.nn.metrics."""

import numpy as np
import pytest

from repro.nn.metrics import accuracy, confusion_matrix, per_class_accuracy


class TestAccuracy:
    def test_perfect(self):
        assert accuracy(np.array([0, 1, 2]), np.array([0, 1, 2])) == 1.0

    def test_none_correct(self):
        assert accuracy(np.array([1, 2, 0]), np.array([0, 1, 2])) == 0.0

    def test_partial(self):
        assert accuracy(np.array([0, 1, 0, 0]), np.array([0, 1, 1, 1])) == 0.5

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            accuracy(np.array([]), np.array([]))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            accuracy(np.array([0, 1]), np.array([0]))


class TestPerClassAccuracy:
    def test_basic(self):
        preds = np.array([0, 0, 1, 1])
        labels = np.array([0, 1, 1, 1])
        result = per_class_accuracy(preds, labels, num_classes=3)
        assert result[0] == 1.0
        assert result[1] == pytest.approx(2 / 3)
        assert np.isnan(result[2])

    def test_all_classes_present(self):
        preds = labels = np.arange(5)
        result = per_class_accuracy(preds, labels, num_classes=5)
        assert all(v == 1.0 for v in result.values())


class TestConfusionMatrix:
    def test_diagonal_when_perfect(self):
        labels = np.array([0, 1, 2, 2])
        matrix = confusion_matrix(labels, labels, num_classes=3)
        np.testing.assert_array_equal(matrix, np.diag([1, 1, 2]))

    def test_off_diagonal(self):
        matrix = confusion_matrix(np.array([1]), np.array([0]), num_classes=2)
        assert matrix[0, 1] == 1
        assert matrix.sum() == 1

    def test_total_equals_samples(self, rng):
        preds = rng.integers(0, 4, size=50)
        labels = rng.integers(0, 4, size=50)
        assert confusion_matrix(preds, labels, 4).sum() == 50

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.array([0]), np.array([0, 1]), 2)
