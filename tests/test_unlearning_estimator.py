"""Tests for Eq. 6 estimation and Eq. 7 clipping."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.unlearning import GradientEstimator, clip_elementwise, estimate_gradient
from repro.unlearning.lbfgs import LbfgsBuffer


class TestClipElementwise:
    def test_paper_formula(self):
        """Eq. 7: x / max(1, |x|/L) elementwise."""
        g = np.array([0.5, -3.0, 2.0, -0.1])
        out = clip_elementwise(g, 1.0)
        expected = g / np.maximum(1.0, np.abs(g) / 1.0)
        np.testing.assert_allclose(out, expected)
        np.testing.assert_allclose(out, [0.5, -1.0, 1.0, -0.1])

    def test_below_threshold_unchanged(self, rng):
        g = rng.uniform(-0.9, 0.9, size=50)
        np.testing.assert_array_equal(clip_elementwise(g, 1.0), g)

    def test_infinite_threshold_is_identity(self, rng):
        g = rng.normal(size=20) * 100
        np.testing.assert_array_equal(clip_elementwise(g, np.inf), g)

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            clip_elementwise(np.zeros(3), 0.0)
        with pytest.raises(ValueError):
            clip_elementwise(np.zeros(3), -1.0)

    @given(st.floats(0.01, 100.0))
    @settings(max_examples=30, deadline=None)
    def test_output_bounded_property(self, threshold):
        rng = np.random.default_rng(int(threshold * 100))
        g = rng.normal(size=64) * 50
        out = clip_elementwise(g, threshold)
        assert (np.abs(out) <= threshold + 1e-12).all()
        # Sign never flips.
        assert (np.sign(out) == np.sign(g)).all() or (g == 0).any()


class TestEstimateGradient:
    def test_zero_displacement_returns_stored(self, rng):
        buf = LbfgsBuffer()
        s = rng.normal(size=8)
        buf.add_pair(s, s)
        g = rng.normal(size=8)
        w = rng.normal(size=8)
        np.testing.assert_allclose(estimate_gradient(g, buf, w, w), g)

    def test_empty_buffer_returns_stored(self, rng):
        g = rng.normal(size=8)
        out = estimate_gradient(g, LbfgsBuffer(), rng.normal(size=8), rng.normal(size=8))
        np.testing.assert_array_equal(out, g)

    def test_eq6_on_quadratic(self, rng):
        """On a quadratic with Hessian A, estimates are exact in the
        pair span: g(w') = g(w) + A (w' - w)."""
        d = 10
        a_mat = rng.normal(size=(d, d))
        a = a_mat @ a_mat.T / d + np.eye(d)
        buf = LbfgsBuffer(buffer_size=d)
        for _ in range(d):
            s = rng.normal(size=d)
            buf.add_pair(s, a @ s)
        w = rng.normal(size=d)
        w_bar = w + rng.normal(size=d) * 0.1
        g_w = a @ w  # gradient of 0.5 w'Aw
        estimate = estimate_gradient(g_w, buf, w_bar, w)
        true = a @ w_bar
        assert np.linalg.norm(estimate - true) / np.linalg.norm(true) < 0.25

    def test_shape_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            estimate_gradient(np.zeros(3), LbfgsBuffer(), np.zeros(4), np.zeros(4))


class TestGradientEstimator:
    def test_estimate_is_clipped(self, rng):
        est = GradientEstimator(buffer_size=2, clip_threshold=0.5)
        s = rng.normal(size=6)
        est.seed_pair(s, s * 100)
        out = est.estimate(rng.normal(size=6), rng.normal(size=6), rng.normal(size=6))
        assert (np.abs(out) <= 0.5).all()

    def test_tracks_pair_statistics(self, rng):
        est = GradientEstimator()
        s = rng.normal(size=4)
        est.seed_pair(s, s)  # accepted
        est.seed_pair(np.zeros(4), s)  # rejected (zero step)
        assert est.pairs_accepted == 1
        assert est.pairs_rejected == 1

    def test_counts_estimates(self, rng):
        est = GradientEstimator()
        w = rng.normal(size=4)
        est.estimate(rng.normal(size=4), w, w)
        est.estimate(rng.normal(size=4), w, w)
        assert est.estimates_made == 2

    def test_invalid_clip_threshold(self):
        with pytest.raises(ValueError):
            GradientEstimator(clip_threshold=0.0)
