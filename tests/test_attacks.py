"""Tests for repro.attacks — label flip, backdoor, metrics."""

import numpy as np
import pytest

from repro.attacks import (
    BackdoorAttack,
    LabelFlipAttack,
    attack_success_rate,
    sample_malicious_clients,
)
from repro.datasets import ArrayDataset, make_synthetic_mnist
from repro.nn import mlp


@pytest.fixture
def dataset(rng):
    return make_synthetic_mnist(120, rng, image_size=12)


class TestLabelFlip:
    def test_flips_all_source_labels(self, dataset):
        attack = LabelFlipAttack(source_class=7, target_class=1)
        poisoned = attack.poison(dataset)
        assert not (poisoned.y == 7).any()
        originally_7 = dataset.y == 7
        assert (poisoned.y[originally_7 & (np.arange(len(dataset)) < len(poisoned))] == 1).all()

    def test_other_labels_untouched(self, dataset):
        attack = LabelFlipAttack(source_class=7, target_class=1)
        poisoned = attack.poison(dataset)
        others = dataset.y != 7
        np.testing.assert_array_equal(poisoned.y[: len(dataset)][others], dataset.y[others])

    def test_images_unchanged(self, dataset):
        poisoned = LabelFlipAttack().poison(dataset)
        np.testing.assert_array_equal(poisoned.x[: len(dataset)], dataset.x)

    def test_partial_flip(self, dataset, rng):
        attack = LabelFlipAttack(flip_fraction=0.5)
        poisoned = attack.poison(dataset, rng=rng)
        n_src = int((dataset.y == 7).sum())
        remaining = int((poisoned.y == 7).sum())
        assert 0 < remaining < n_src

    def test_partial_flip_without_rng_raises(self, dataset):
        with pytest.raises(ValueError):
            LabelFlipAttack(flip_fraction=0.5).poison(dataset)

    def test_oversample_grows_dataset(self, dataset):
        attack = LabelFlipAttack(oversample=3)
        poisoned = attack.poison(dataset)
        n_src = int((dataset.y == 7).sum())
        assert len(poisoned) == len(dataset) + 2 * n_src

    def test_oversampled_are_target_labelled(self, dataset):
        poisoned = LabelFlipAttack(oversample=2).poison(dataset)
        assert (poisoned.y[len(dataset) :] == 1).all()

    def test_same_source_target_raises(self):
        with pytest.raises(ValueError):
            LabelFlipAttack(source_class=1, target_class=1)

    def test_class_out_of_range_raises(self, rng):
        small = ArrayDataset(rng.normal(size=(10, 2)), rng.integers(0, 3, 10), num_classes=3)
        with pytest.raises(ValueError):
            LabelFlipAttack(source_class=7, target_class=1).poison(small)

    def test_describe(self):
        assert "7->1" in LabelFlipAttack().describe()


class TestBackdoor:
    def test_stamp_writes_trigger(self, dataset):
        attack = BackdoorAttack(trigger_size=3, trigger_value=1.0, corner="br", margin=1)
        stamped = attack.stamp(dataset.x)
        assert (stamped[:, :, -4:-1, -4:-1] == 1.0).all()

    def test_stamp_leaves_rest(self, dataset):
        attack = BackdoorAttack(trigger_size=3)
        stamped = attack.stamp(dataset.x)
        np.testing.assert_array_equal(stamped[:, :, :5, :5], dataset.x[:, :, :5, :5])

    def test_poison_relabels(self, dataset, rng):
        attack = BackdoorAttack(target_class=2, poison_fraction=0.5)
        poisoned = attack.poison(dataset, rng)
        n_target = int((poisoned.y == 2).sum())
        assert n_target >= int(0.5 * len(dataset))

    def test_poison_fraction_respected(self, dataset, rng):
        attack = BackdoorAttack(poison_fraction=0.25)
        poisoned = attack.poison(dataset, rng)
        changed = (poisoned.x != dataset.x).any(axis=(1, 2, 3))
        assert abs(int(changed.sum()) - round(0.25 * len(dataset))) <= len(dataset) // 10

    def test_trigger_test_set_excludes_target_class(self, dataset):
        attack = BackdoorAttack(target_class=2)
        eval_set = attack.trigger_test_set(dataset)
        assert len(eval_set) == int((dataset.y != 2).sum())
        assert (eval_set.y == 2).all()

    def test_corners(self, dataset):
        for corner in ("br", "bl", "tr", "tl"):
            attack = BackdoorAttack(corner=corner, margin=0, trigger_size=2)
            stamped = attack.stamp(dataset.x[:1])
            assert (stamped == 1.0).any()

    def test_trigger_too_big_raises(self, rng):
        tiny = rng.random((2, 1, 4, 4))
        with pytest.raises(ValueError):
            BackdoorAttack(trigger_size=5).stamp(tiny)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            BackdoorAttack(trigger_size=0)
        with pytest.raises(ValueError):
            BackdoorAttack(poison_fraction=0.0)
        with pytest.raises(ValueError):
            BackdoorAttack(corner="xx")
        with pytest.raises(ValueError):
            BackdoorAttack(margin=-1)

    def test_non_4d_raises(self, rng):
        with pytest.raises(ValueError):
            BackdoorAttack().stamp(rng.random((3, 8, 8)))


class TestAttackSuccessRate:
    def test_counts_target_predictions(self, rng):
        model = mlp(rng, 4, 3, hidden=4)
        data = ArrayDataset(rng.normal(size=(30, 4)), np.zeros(30, dtype=int), num_classes=3)
        asr = attack_success_rate(model, data, target_class=1)
        preds = model.predict(data.x)
        assert asr == pytest.approx(float(np.mean(preds == 1)))

    def test_empty_raises(self, rng):
        model = mlp(rng, 4, 3, hidden=4)
        empty = ArrayDataset(np.zeros((0, 4)), np.zeros(0, dtype=int), num_classes=3)
        with pytest.raises(ValueError):
            attack_success_rate(model, empty, 1)


class TestSampleMalicious:
    def test_twenty_percent(self, rng):
        chosen = sample_malicious_clients(100, 0.2, rng)
        assert len(chosen) == 20
        assert len(set(chosen)) == 20

    def test_at_least_one(self, rng):
        assert len(sample_malicious_clients(3, 0.01, rng)) == 1

    def test_zero_fraction(self, rng):
        assert sample_malicious_clients(10, 0.0, rng) == []

    def test_sorted_output(self, rng):
        chosen = sample_malicious_clients(50, 0.3, rng)
        assert chosen == sorted(chosen)

    def test_invalid_inputs(self, rng):
        with pytest.raises(ValueError):
            sample_malicious_clients(0, 0.2, rng)
        with pytest.raises(ValueError):
            sample_malicious_clients(10, 1.5, rng)
