"""The parallel execution engine's determinism contract.

``repro.parallel`` promises that the thread and process backends are
*bitwise identical* to the serial reference — same training records,
same accuracies, same fault bookkeeping, same recovered parameters —
with only wall time allowed to differ.  These tests pin that contract:

- executor unit behaviour (in-task-order results, worker contexts,
  pool stats, utilization math);
- the guard that the process-wide default stays ``serial``/1, so the
  engine's existence cannot perturb seed-sensitive tests;
- serial vs thread vs process equality for ``FederatedSimulation.run``
  across seeds, with and without an active ``FaultPlan`` (including
  dropped stragglers and flaky retries);
- the same equality for ``SignRecoveryUnlearner.unlearn`` with seeded
  L-BFGS buffers;
- telemetry counter parity: the parallel path re-emits per-client
  metrics from worker stats, so counters match the serial run;
- the batched sign codec (`pack_signs_batch` / `encode_round` /
  ``put_round``) against the per-vector reference, and the cached
  store ``nbytes`` against a from-scratch recount.
"""

import os
import time

import numpy as np
import pytest

from repro.datasets import make_synthetic_mnist, partition_iid, train_test_split
from repro.faults import FaultPlan, RetryPolicy
from repro.fl import FederatedSimulation, ParticipationSchedule, VehicleClient
from repro.nn import mlp
from repro.parallel import (
    ExecutionPolicy,
    Executor,
    PoolStats,
    default_execution,
    get_context,
    make_executor,
    pool_utilization,
    resolve_execution,
    set_default_execution,
)
from repro.storage import (
    FullGradientStore,
    SignGradientStore,
    encode_round,
    pack_signs,
    pack_signs_batch,
    ternarize,
    unpack_signs,
)
from repro.telemetry import Telemetry, use_telemetry
from repro.unlearning import SignRecoveryUnlearner
from repro.utils.rng import SeedSequenceTree

NUM_CLIENTS = 6
IMAGE = 6
FEATURES = IMAGE * IMAGE

BACKENDS = [("serial", 1), ("thread", 3), ("process", 2)]


def build_sim(seed, rounds=None, schedule=None, **kwargs):
    """A tiny but real FL setup, rebuilt identically from its seed."""
    tree = SeedSequenceTree(seed)
    data = make_synthetic_mnist(180, tree.rng("data"), image_size=IMAGE)
    train, test = train_test_split(data, 0.2, tree.rng("split"))
    shards = partition_iid(train, NUM_CLIENTS, tree.rng("part"))
    clients = [
        VehicleClient(i, shards[i], tree.rng(f"c{i}"), batch_size=16)
        for i in range(NUM_CLIENTS)
    ]
    model = mlp(tree.rng("model"), FEATURES, 10, hidden=6)
    kwargs.setdefault("gradient_store", SignGradientStore())
    kwargs.setdefault("test_set", test)
    kwargs.setdefault("eval_every", 5)
    return model, FederatedSimulation(
        model, clients, 2e-3, schedule=schedule, **kwargs
    )


def assert_records_equal(a, b):
    """Bitwise equality of two training records (params + history)."""
    np.testing.assert_array_equal(a.final_params(), b.final_params())
    for t in range(a.num_rounds + 1):
        np.testing.assert_array_equal(a.params_at(t), b.params_at(t))
    assert a.ledger.to_dict() == b.ledger.to_dict()
    assert a.client_sizes == b.client_sizes
    items_a, items_b = a.gradients.items(), b.gradients.items()
    assert [k for k, _ in items_a] == [k for k, _ in items_b]
    for (_, pa), (_, pb) in zip(items_a, items_b):
        if isinstance(pa, tuple):  # sign store: (packed bytes, length)
            np.testing.assert_array_equal(pa[0], pb[0])
            assert pa[1] == pb[1]
        else:
            np.testing.assert_array_equal(pa, pb)


# ----------------------------------------------------------------------
# policy
# ----------------------------------------------------------------------
class TestExecutionPolicy:
    def test_process_default_is_serial_single_worker(self):
        """The guard: nothing in the package may flip the default —
        every test and experiment not asking for parallelism runs the
        reference serial path."""
        assert default_execution() == ExecutionPolicy(backend="serial", workers=1)

    def test_constructors_resolve_to_serial_by_default(self):
        _, sim = build_sim(3)
        assert sim.execution == ExecutionPolicy(backend="serial", workers=1)
        unlearner = SignRecoveryUnlearner()
        assert unlearner.execution == ExecutionPolicy(backend="serial", workers=1)

    def test_resolve_fills_unset_knobs_from_default(self):
        previous = set_default_execution(backend="thread", workers=4)
        try:
            assert resolve_execution() == ExecutionPolicy("thread", 4)
            assert resolve_execution(workers=2) == ExecutionPolicy("thread", 2)
            assert resolve_execution(backend="serial") == ExecutionPolicy("serial", 4)
        finally:
            set_default_execution(previous.backend, previous.workers)
        assert default_execution() == ExecutionPolicy("serial", 1)

    def test_set_default_reaches_constructors(self):
        previous = set_default_execution(backend="thread", workers=2)
        try:
            _, sim = build_sim(3)
            assert sim.execution == ExecutionPolicy("thread", 2)
            assert SignRecoveryUnlearner().execution == ExecutionPolicy("thread", 2)
        finally:
            set_default_execution(previous.backend, previous.workers)

    def test_invalid_policies_rejected(self):
        with pytest.raises(ValueError):
            ExecutionPolicy(backend="gpu")
        with pytest.raises(ValueError):
            ExecutionPolicy(workers=0)
        with pytest.raises(ValueError):
            make_executor("gpu", 1)


# ----------------------------------------------------------------------
# executor
# ----------------------------------------------------------------------
def _square(x):
    return x * x


def _delayed_identity(pair):
    index, delay = pair
    time.sleep(delay)
    return index


def _context_factory(base):
    return {"base": base}


def _read_context(key):
    return get_context(key)["base"]


class TestExecutor:
    @pytest.mark.parametrize("backend,workers", BACKENDS)
    def test_results_in_task_order(self, backend, workers):
        with make_executor(backend, workers) as ex:
            results, stats = ex.run(_square, list(range(10)))
        assert results == [x * x for x in range(10)]
        assert isinstance(stats, PoolStats)
        assert stats.wall_seconds >= 0.0

    def test_thread_results_ordered_despite_completion_order(self):
        """Later-submitted tasks finish first; results stay task-ordered."""
        pairs = [(i, 0.03 * (4 - i)) for i in range(5)]
        with make_executor("thread", 5) as ex:
            results, _ = ex.run(_delayed_identity, pairs)
        assert results == [0, 1, 2, 3, 4]

    @pytest.mark.parametrize("backend,workers", BACKENDS)
    def test_worker_context_install_and_release(self, backend, workers):
        ex = make_executor(backend, workers, context=(_context_factory, (7,)))
        try:
            assert ex.context_key is not None
            results, _ = ex.run(_read_context, [ex.context_key] * 3)
            assert results == [7, 7, 7]
        finally:
            ex.close()
        if backend != "process":  # parent-side registry is cleared on close
            with pytest.raises(RuntimeError):
                get_context(ex.context_key)

    def test_get_context_unknown_key_raises(self):
        with pytest.raises(RuntimeError):
            get_context("never-installed")

    def test_executor_base_class_is_abstract(self):
        ex = Executor(workers=1)
        with pytest.raises(NotImplementedError):
            ex.run(_square, [1])
        with pytest.raises(NotImplementedError):
            ex.submit(_square, 1)

    @pytest.mark.parametrize("backend,workers", BACKENDS)
    def test_submit_returns_future_with_result(self, backend, workers):
        with make_executor(backend, workers) as ex:
            future = ex.submit(_square, 6)
            assert future.result(timeout=30) == 36

    def test_serial_submit_resolves_inline(self):
        with make_executor("serial", 1) as ex:
            future = ex.submit(_square, 3)
            # the serial engine runs the call before returning
            assert future.done()
            assert future.result() == 9

    @pytest.mark.parametrize("backend,workers", [("serial", 1), ("thread", 2)])
    def test_submit_propagates_exceptions(self, backend, workers):
        def boom():
            raise RuntimeError("task failed")

        with make_executor(backend, workers) as ex:
            future = ex.submit(boom)
            with pytest.raises(RuntimeError, match="task failed"):
                future.result(timeout=30)

    def test_pool_utilization_math(self):
        assert pool_utilization(2.0, 4, 1.0) == 0.5
        assert pool_utilization(100.0, 1, 1.0) == 1.0  # clamped
        assert pool_utilization(1.0, 4, 0.0) == 0.0
        assert pool_utilization(1.0, 0, 1.0) == 0.0


# ----------------------------------------------------------------------
# training identity
# ----------------------------------------------------------------------
class TestTrainingIdentity:
    @pytest.mark.parametrize("seed", [11, 23])
    def test_clean_run_bitwise_identical_across_backends(self, seed):
        _, ref_sim = build_sim(seed)
        reference = ref_sim.run(8)
        for backend, workers in BACKENDS[1:]:
            _, sim = build_sim(seed, backend=backend, workers=workers)
            record = sim.run(8)
            assert_records_equal(record, reference)
            assert record.accuracy_history == reference.accuracy_history
            assert sim.fault_stats == ref_sim.fault_stats

    @pytest.mark.parametrize("seed", [11, 23])
    def test_faulted_run_bitwise_identical_across_backends(self, seed):
        """Every fault kind active, tuned so both straggler outcomes
        (met and dropped) and flaky retries actually occur."""

        def plan():
            return FaultPlan.random(
                range(NUM_CLIENTS),
                rounds=10,
                seed=seed + 1,
                crash_rate=0.1,
                corrupt_rate=0.1,
                straggle_rate=0.2,
                flaky_rate=0.2,
                straggle_delay_scale=2.0,
                fallback_deadline=2.0,
            )

        _, ref_sim = build_sim(
            seed, fault_plan=plan(), retry_policy=RetryPolicy(max_attempts=2)
        )
        reference = ref_sim.run(10)
        assert ref_sim.fault_stats["stragglers_dropped"] > 0
        assert ref_sim.fault_stats["stragglers_met"] > 0
        assert ref_sim.fault_stats["retries"] > 0
        assert ref_sim.fault_stats["crashes"] > 0
        assert ref_sim.fault_stats["corrupted"] > 0
        for backend, workers in BACKENDS[1:]:
            _, sim = build_sim(
                seed,
                fault_plan=plan(),
                retry_policy=RetryPolicy(max_attempts=2),
                backend=backend,
                workers=workers,
            )
            record = sim.run(10)
            assert_records_equal(record, reference)
            assert sim.fault_stats == ref_sim.fault_stats
            assert record.accuracy_history == reference.accuracy_history

    def test_telemetry_counter_parity(self):
        """The parent re-emits per-client metrics from worker stats, so
        counters (not just results) match the serial run."""
        counters = {}
        for backend, workers in [("serial", 1), ("thread", 3)]:
            telemetry = Telemetry()
            plan = FaultPlan.random(
                range(NUM_CLIENTS),
                rounds=6,
                seed=5,
                crash_rate=0.1,
                flaky_rate=0.3,
                straggle_rate=0.2,
                straggle_delay_scale=2.0,
                fallback_deadline=2.0,
            )
            _, sim = build_sim(
                31,
                fault_plan=plan,
                retry_policy=RetryPolicy(max_attempts=2),
                backend=backend,
                workers=workers,
            )
            with use_telemetry(telemetry):
                sim.run(6)
            registry = telemetry.registry
            counters[backend] = {
                name: registry.counter_value(name)
                for name in (
                    "fl_dropouts_total",
                    "faults_retries_total",
                    "faults_giveups_total",
                )
            }
            counters[backend]["update_count"] = registry.histogram(
                "fl_client_update_seconds"
            ).count
            counters[backend]["update_bytes"] = registry.histogram(
                "fl_client_update_bytes"
            ).sum
        assert counters["thread"] == counters["serial"]
        assert counters["serial"]["faults_retries_total"] > 0

    def test_parallel_pool_metrics_emitted_only_for_pool_backends(self):
        for backend, workers, expect in [("serial", 1, False), ("thread", 2, True)]:
            telemetry = Telemetry()
            _, sim = build_sim(7, backend=backend, workers=workers)
            with use_telemetry(telemetry):
                sim.run(3)
            registry = telemetry.registry
            dispatch = registry.histogram("fl_parallel_dispatch_seconds")
            if expect:
                assert registry.gauge_value("fl_parallel_workers") == workers
                assert dispatch is not None and dispatch.count == 3
                utilization = registry.gauge_value("fl_parallel_utilization")
                assert 0.0 <= utilization <= 1.0
            else:
                assert registry.gauge_value("fl_parallel_workers") is None
                assert dispatch is None


# ----------------------------------------------------------------------
# recovery identity
# ----------------------------------------------------------------------
class TestRecoveryIdentity:
    @pytest.fixture(scope="class")
    def trained(self):
        # Client 2 joins at round 8 so forgetting it yields a non-zero
        # forget round — the replay window starts with history in the
        # L-BFGS buffers and the workers exercise real compact HVPs.
        schedule = ParticipationSchedule.with_events(
            range(NUM_CLIENTS), joins={2: 8}
        )
        model, sim = build_sim(41, schedule=schedule)
        record = sim.run(24)
        return model, record

    def test_recovery_bitwise_identical_across_backends(self, trained):
        model, record = trained
        reference = SignRecoveryUnlearner(refresh_period=4).unlearn(
            record, forget_ids=[2], model=model
        )
        assert reference.stats["forget_round"] > 0
        assert reference.stats["pairs_accepted"] > 0  # real HVP state in play
        for backend, workers in BACKENDS[1:]:
            result = SignRecoveryUnlearner(
                refresh_period=4, backend=backend, workers=workers
            ).unlearn(record, forget_ids=[2], model=model)
            np.testing.assert_array_equal(result.params, reference.params)
            assert result.stats == reference.stats
            assert result.rounds_replayed == reference.rounds_replayed

    def test_recovery_telemetry_counter_parity(self, trained):
        model, record = trained
        counters = {}
        for backend, workers in [("serial", 1), ("thread", 3)]:
            telemetry = Telemetry()
            with use_telemetry(telemetry):
                SignRecoveryUnlearner(
                    refresh_period=4, backend=backend, workers=workers
                ).unlearn(record, forget_ids=[2], model=model)
            registry = telemetry.registry
            counters[backend] = {
                "hvp": registry.counter_value("lbfgs_hvp_total"),
                "rounds": registry.counter_value("recovery_rounds_total"),
                "clip_count": registry.histogram("recovery_clip_rate").count,
            }
        assert counters["thread"] == counters["serial"]
        assert counters["serial"]["hvp"] > 0


# ----------------------------------------------------------------------
# batched sign codec + store caches (satellites)
# ----------------------------------------------------------------------
class TestBatchedCodec:
    @pytest.mark.parametrize("length", [0, 1, 3, 4, 5, 64, 257, 1000])
    def test_pack_signs_batch_rows_match_per_vector_pack(self, length):
        rng = np.random.default_rng(length)
        signs = rng.choice(np.array([-1, 0, 1], dtype=np.int8), size=(5, length))
        packed, out_length = pack_signs_batch(signs)
        assert out_length == length
        for row, vector in zip(packed, signs):
            single, single_length = pack_signs(vector)
            np.testing.assert_array_equal(row, single)
            assert single_length == length
            np.testing.assert_array_equal(unpack_signs(row, length), vector)

    def test_encode_round_matches_ternarize_then_pack(self):
        rng = np.random.default_rng(9)
        gradients = rng.normal(size=(4, 33))
        packed, length = encode_round(gradients, delta=0.1)
        assert length == 33
        for row, gradient in zip(packed, gradients):
            reference, _ = pack_signs(ternarize(gradient, 0.1))
            np.testing.assert_array_equal(row, reference)

    def test_pack_signs_batch_rejects_bad_input(self):
        with pytest.raises(ValueError):
            pack_signs_batch(np.zeros(4, dtype=np.int8))  # 1-D
        with pytest.raises(ValueError):
            pack_signs_batch(np.full((2, 4), 3, dtype=np.int8))  # not ternary


class TestStoreBatchingAndCaches:
    @staticmethod
    def _updates(rng, num_clients=5, dim=67):
        return {i: rng.normal(size=dim) for i in range(num_clients)}

    @pytest.mark.parametrize("store_cls", [SignGradientStore, FullGradientStore])
    def test_put_round_identical_to_per_client_puts(self, store_cls):
        rng = np.random.default_rng(3)
        updates = {t: self._updates(np.random.default_rng(t)) for t in range(3)}
        batched, reference = store_cls(), store_cls()
        for t, round_updates in updates.items():
            batched.put_round(t, round_updates)
            for client_id, update in round_updates.items():
                reference.put(t, client_id, update)
        items_a, items_b = batched.items(), reference.items()
        assert [k for k, _ in items_a] == [k for k, _ in items_b]
        for t, round_updates in updates.items():
            for client_id in round_updates:
                np.testing.assert_array_equal(
                    batched.get(t, client_id), reference.get(t, client_id)
                )
        assert batched.nbytes() == reference.nbytes()
        del rng

    def test_put_round_falls_back_on_ragged_sizes(self):
        store = SignGradientStore()
        store.put_round(0, {0: np.ones(8), 1: np.ones(12)})
        np.testing.assert_array_equal(store.get(0, 0), np.ones(8))
        np.testing.assert_array_equal(store.get(0, 1), np.ones(12))

    @pytest.mark.parametrize("store_cls", [SignGradientStore, FullGradientStore])
    def test_nbytes_cache_survives_overwrite_and_drop(self, store_cls):
        store = store_cls()
        rng = np.random.default_rng(5)

        def recount():
            total = 0
            for _, payload in store.items():
                if isinstance(payload, tuple):
                    total += payload[0].nbytes
                else:
                    total += payload.nbytes
            return total

        for t in range(3):
            store.put_round(t, self._updates(rng))
        assert store.nbytes() == recount()
        store.put(1, 2, rng.normal(size=129))  # overwrite with a new size
        assert store.nbytes() == recount()
        store.drop_client(2)
        assert store.nbytes() == recount()
        store.put_round(3, self._updates(rng, dim=31))
        assert store.nbytes() == recount()


# ----------------------------------------------------------------------
# CLI plumbing
# ----------------------------------------------------------------------
class TestCliPolicyPlumbing:
    def test_eval_main_installs_and_restores_policy(self, tmp_path, capsys):
        from repro.eval.__main__ import main

        assert default_execution() == ExecutionPolicy("serial", 1)
        code = main(
            ["storage", "--scale", "smoke", "--backend", "thread",
             "--workers", "2", "--quiet"]
        )
        assert code == 0
        assert default_execution() == ExecutionPolicy("serial", 1)
        capsys.readouterr()
