"""Tests for the evaluation harness: configs, workloads, reporting."""

import numpy as np
import pytest

from repro.eval import (
    ExperimentConfig,
    available_scales,
    build_workload,
    config_for,
    format_result,
    format_table,
    train_workload,
)
from repro.fl import ParticipationSchedule
from repro.storage import FullGradientStore


class TestConfig:
    def test_scales(self):
        assert available_scales() == ["smoke", "ci", "paper"]

    def test_config_for_each_combination(self):
        for dataset in ("mnist", "gtsrb"):
            for scale in available_scales():
                cfg = config_for(dataset, scale)
                assert cfg.dataset == dataset
                assert cfg.scale == scale

    def test_paper_pinned_values(self):
        """Fields the paper pins must match across all profiles."""
        for dataset in ("mnist", "gtsrb"):
            for scale in available_scales():
                cfg = config_for(dataset, scale)
                assert cfg.forget_join_round == 2
                assert cfg.delta == 1e-6
                assert cfg.buffer_size == 2
                assert cfg.refresh_period == 21
                assert cfg.malicious_fraction == 0.2

    def test_paper_profile_uses_cnn(self):
        assert config_for("mnist", "paper").model_kind == "cnn"
        assert config_for("gtsrb", "paper").model_kind == "cnn"

    def test_paper_profile_scale(self):
        cfg = config_for("mnist", "paper")
        assert cfg.num_clients == 100
        assert cfg.num_rounds == 100
        assert cfg.batch_size == 128

    def test_overrides(self):
        cfg = config_for("mnist", "smoke", num_rounds=7)
        assert cfg.num_rounds == 7

    def test_with_overrides(self):
        cfg = config_for("mnist", "smoke")
        new = cfg.with_overrides(delta=1e-3)
        assert new.delta == 1e-3
        assert cfg.delta == 1e-6

    def test_invalid_dataset(self):
        with pytest.raises(ValueError):
            config_for("cifar", "smoke")

    def test_invalid_attack(self):
        with pytest.raises(ValueError):
            ExperimentConfig(attack="dos")

    def test_forget_round_bounds(self):
        with pytest.raises(ValueError):
            ExperimentConfig(forget_join_round=999, num_rounds=10)

    def test_env_scale(self, monkeypatch):
        from repro.eval.config import current_scale

        monkeypatch.setenv("REPRO_SCALE", "smoke")
        assert current_scale() == "smoke"
        monkeypatch.setenv("REPRO_SCALE", "bogus")
        with pytest.raises(ValueError):
            current_scale()


class TestWorkload:
    @pytest.fixture(scope="class")
    def workload(self):
        return build_workload(config_for("mnist", "smoke"))

    def test_client_count(self, workload):
        assert len(workload.clients) == workload.config.num_clients

    def test_benign_forget_target(self, workload):
        assert workload.forget_ids == [workload.config.num_clients - 1]
        assert workload.label_flip is None and workload.backdoor is None

    def test_forget_client_joins_late(self, workload):
        fid = workload.forget_ids[0]
        assert workload.schedule.join_rounds[fid] == 2

    def test_train_records_full_gradients(self, workload):
        record = train_workload(workload)
        assert isinstance(record.gradients, FullGradientStore)
        record.validate()

    def test_training_cached(self, workload):
        a = train_workload(workload)
        b = train_workload(workload)
        assert a is b

    def test_label_flip_workload(self):
        w = build_workload(config_for("mnist", "smoke", attack="label_flip"))
        assert w.label_flip is not None
        assert len(w.forget_ids) == max(1, round(0.2 * w.config.num_clients))
        # Malicious shards contain no source-class labels.
        for cid in w.forget_ids:
            assert not (w.clients[cid].dataset.y == 7).any()

    def test_backdoor_workload(self):
        w = build_workload(config_for("mnist", "smoke", attack="backdoor"))
        assert w.backdoor is not None
        for cid in w.forget_ids:
            assert (w.clients[cid].dataset.y == w.config.backdoor_target).sum() > 0

    def test_custom_schedule_respected(self):
        cfg = config_for("mnist", "smoke")
        sched = ParticipationSchedule.with_events(range(cfg.num_clients), joins={0: 3})
        w = build_workload(cfg, schedule=sched)
        assert w.schedule.join_rounds[0] == 3
        # Forget client still forced to F.
        assert w.schedule.join_rounds[w.forget_ids[0]] == cfg.forget_join_round

    def test_remaining_client_map(self, workload):
        remaining = workload.remaining_client_map()
        assert set(remaining) == set(range(workload.config.num_clients - 1))

    def test_model_factory_deterministic(self, workload):
        a = workload.model_factory().get_flat_params()
        b = workload.model_factory().get_flat_params()
        np.testing.assert_array_equal(a, b)


class TestReporting:
    def test_format_table_aligns(self):
        out = format_table(["a", "bb"], [["1", "2"], ["333", "4"]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "333" in out

    def test_format_table_row_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a"], [["1", "2"]])

    def test_format_result_table1(self):
        result = {
            "experiment": "table1",
            "measured": {"mnist": {"retrain": 0.9, "fedrecover": 0.89, "fedrecovery": 0.8, "ours": 0.85, "trained": 0.91}},
            "paper": {"mnist": {"retrain": 0.873, "fedrecover": 0.869, "fedrecovery": 0.825, "ours": 0.859}},
        }
        out = format_result(result)
        assert "mnist" in out and "0.850" in out

    def test_format_result_generic(self):
        out = format_result({"experiment": "custom", "scale": "smoke", "measured": {"x": 1.0}})
        assert "custom" in out


class TestReportingSweepsAndStorage:
    def test_format_fig2(self):
        from repro.eval import format_result

        result = {
            "experiment": "fig2",
            "measured": [{"L": 0.5, "accuracy": 0.4}, {"L": 1.0, "accuracy": 0.9}],
            "measured_optimum_l": 1.0,
            "paper_optimum_l": 1.0,
        }
        out = format_result(result)
        assert "L" in out and "0.900" in out

    def test_format_fig3(self):
        from repro.eval import format_result

        result = {
            "experiment": "fig3",
            "measured": [{"delta": 1e-6, "accuracy": 0.9}, {"delta": 0.5, "accuracy": 0.5}],
            "measured_optimum_delta": 1e-6,
            "paper_optimum_delta": 1e-6,
        }
        out = format_result(result)
        assert "delta" in out

    def test_format_storage(self):
        from repro.eval import format_result

        result = {
            "experiment": "storage",
            "model_params": 100,
            "full_gradient_bytes": 400,
            "sign_gradient_bytes": 25,
            "measured_savings": 0.9375,
            "paper_claim": 0.95,
        }
        out = format_result(result)
        assert "0.9375" in out

    def test_format_fig1_full(self):
        from repro.eval import format_result

        result = {
            "experiment": "fig1",
            "measured": {
                "backdoor": {
                    "asr_before": 0.4, "asr_after_forget": 0.05,
                    "asr_after_recover": 0.06, "accuracy_after_recover": 0.9,
                }
            },
        }
        out = format_result(result)
        assert "backdoor" in out and "0.400" in out
