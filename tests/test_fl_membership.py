"""Tests for the membership ledger."""

import pytest

from repro.fl import MembershipLedger


@pytest.fixture
def ledger():
    lg = MembershipLedger()
    lg.join(0, 0)
    lg.join(1, 0)
    lg.join(2, 5)  # joins mid-way — the paper's forgotten-client shape
    return lg


class TestJoin:
    def test_join_round_recorded(self, ledger):
        assert ledger.join_round(2) == 5

    def test_double_join_raises(self, ledger):
        with pytest.raises(ValueError):
            ledger.join(0, 3)

    def test_negative_round_raises(self):
        with pytest.raises(ValueError):
            MembershipLedger().join(0, -1)

    def test_unknown_client_raises(self, ledger):
        with pytest.raises(KeyError):
            ledger.join_round(99)


class TestLeave:
    def test_leave_recorded(self, ledger):
        ledger.leave(0, 10)
        assert ledger.leave_round(0) == 10
        assert not ledger.is_member(0, 10)
        assert ledger.is_member(0, 9)

    def test_double_leave_raises(self, ledger):
        ledger.leave(0, 10)
        with pytest.raises(ValueError):
            ledger.leave(0, 12)

    def test_leave_before_join_raises(self, ledger):
        with pytest.raises(ValueError):
            ledger.leave(2, 5)


class TestMembership:
    def test_not_member_before_join(self, ledger):
        assert not ledger.is_member(2, 4)
        assert ledger.is_member(2, 5)

    def test_members_at(self, ledger):
        assert ledger.members_at(0) == [0, 1]
        assert ledger.members_at(5) == [0, 1, 2]

    def test_known_clients(self, ledger):
        assert ledger.known_clients() == [0, 1, 2]


class TestDropout:
    def test_dropout_blocks_participation(self, ledger):
        ledger.record_dropout(0, 3)
        assert ledger.is_member(0, 3)  # still a member...
        assert not ledger.participated(0, 3)  # ...but no gradient

    def test_participants_at(self, ledger):
        ledger.record_dropout(1, 2)
        assert ledger.participants_at(2) == [0]
        assert ledger.participants_at(3) == [0, 1]

    def test_rounds_participated(self, ledger):
        ledger.record_dropout(0, 1)
        ledger.record_dropout(0, 2)
        assert ledger.rounds_participated(0, 4) == 3  # rounds 0, 3, 4
