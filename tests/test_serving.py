"""Erasure serving daemon: admission, deadlines, breaker, degradation.

The robustness contracts under test (``docs/ARCHITECTURE.md``,
"Erasure serving daemon"):

- bounded admission with typed load shedding (zero capacity sheds
  everything; ``retry_after`` hints are attached);
- idempotency keys deduplicate concurrent retries onto one erasure;
- deadlines are policed at enqueue, at dequeue, and between replay
  rounds, and a mid-replay abort leaves the prefix cache holding only
  committed round snapshots — the next request recovers parameters
  byte-identical to a cold replay;
- shutdown is deterministic in both modes (drain finishes queued work,
  abort fails it with typed rejections);
- the circuit breaker trips on fault storms and the daemon degrades to
  serve-stale or queue-only instead of failing hard;
- :class:`RetryPolicy` respects a total-deadline budget;
- :class:`PrometheusFlusher` keeps the exported text in parity with
  the live registry.

Everything time-dependent runs on fake clocks or event-driven
interleaving — no sleeps-and-hope.
"""

import threading

import numpy as np
import pytest

from repro.datasets import make_synthetic_mnist, partition_iid
from repro.faults.injection import TransientClientError
from repro.faults.retry import RetryPolicy
from repro.fl import FederatedSimulation, ParticipationSchedule, VehicleClient
from repro.nn import mlp
from repro.serving import (
    CircuitBreaker,
    Deadline,
    DeadlineExceededError,
    ErasureDaemon,
    ErasureRequest,
    RejectedError,
)
from repro.serving.breaker import CLOSED, HALF_OPEN, OPEN
from repro.storage import SignGradientStore
from repro.telemetry import (
    MetricsRegistry,
    PrometheusFlusher,
    Telemetry,
    export_prometheus,
    use_telemetry,
)
from repro.unlearning import SignRecoveryUnlearner, UnlearningService
from repro.utils.rng import SeedSequenceTree

NUM_CLIENTS = 8
NUM_ROUNDS = 10
IMAGE = 8
FEATURES = IMAGE * IMAGE
CLIP = 5.0
#: Late joiners — the erasure targets (replay spans only a few rounds).
JOINS = {4: 3, 5: 5, 6: 7, 7: 8}


class FakeClock:
    """A manually advanced monotonic clock."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def build_record(seed=5):
    tree = SeedSequenceTree(seed)
    data = make_synthetic_mnist(160, tree.rng("data"), image_size=IMAGE)
    shards = partition_iid(data, NUM_CLIENTS, tree.rng("part"))
    clients = [
        VehicleClient(i, shards[i], tree.rng(f"c{i}"), batch_size=16)
        for i in range(NUM_CLIENTS)
    ]
    model = mlp(tree.rng("model"), FEATURES, 10, hidden=8)
    schedule = ParticipationSchedule.with_events(range(NUM_CLIENTS), joins=JOINS)
    sim = FederatedSimulation(
        model, clients, 2e-3, schedule=schedule,
        gradient_store=SignGradientStore(),
    )
    return sim.run(NUM_ROUNDS), model


@pytest.fixture
def service():
    record, model = build_record()
    return UnlearningService(record=record, model=model, clip_threshold=CLIP)


# ----------------------------------------------------------------------
# request vocabulary
# ----------------------------------------------------------------------
class TestDeadline:
    def test_remaining_and_expiry_on_fake_clock(self):
        clock = FakeClock()
        deadline = Deadline(2.0, clock=clock)
        assert deadline.remaining() == pytest.approx(2.0)
        assert not deadline.expired()
        clock.advance(1.5)
        assert deadline.remaining() == pytest.approx(0.5)
        clock.advance(0.5)
        assert deadline.expired()
        with pytest.raises(DeadlineExceededError):
            deadline.check()

    def test_check_passes_before_expiry(self):
        deadline = Deadline(60.0)
        deadline.check()  # must not raise

    def test_request_validation(self):
        with pytest.raises(ValueError):
            ErasureRequest(client_ids=())
        assert ErasureRequest(client_ids=(1,)).kind == "single"
        assert ErasureRequest(client_ids=(1, 2)).kind == "batch"

    def test_rejected_error_carries_hint(self):
        err = RejectedError("queue_full", retry_after=1.25)
        assert err.reason == "queue_full"
        assert err.retry_after == 1.25
        assert "1.250" in str(err)


# ----------------------------------------------------------------------
# circuit breaker (fake clock throughout)
# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def make(self, clock, threshold=3, cooldown=10.0):
        return CircuitBreaker(
            failure_threshold=threshold, window=8,
            cooldown_seconds=cooldown, clock=clock,
        )

    def test_trips_at_threshold(self):
        breaker = self.make(FakeClock())
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED and breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        assert breaker.cooldown_remaining() == pytest.approx(10.0)

    def test_successes_age_failures_out_of_window(self):
        breaker = self.make(FakeClock())
        for _ in range(2):
            breaker.record_failure()
        for _ in range(8):  # window is 8: successes push failures out
            breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_half_open_probe_success_closes(self):
        clock = FakeClock()
        breaker = self.make(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.state == HALF_OPEN
        assert breaker.allow()      # the single probe
        assert not breaker.allow()  # second caller must wait
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.transitions == [OPEN, HALF_OPEN, CLOSED]

    def test_half_open_probe_failure_reopens(self):
        clock = FakeClock()
        breaker = self.make(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.cooldown_remaining() == pytest.approx(10.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=5, window=3)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown_seconds=-1)

    def test_release_probe_reopens_the_probe_slot(self):
        # A probe that ends without a substrate verdict (deadline
        # abort, client error) must return its slot, or the breaker
        # wedges half-open rejecting everything forever.
        clock = FakeClock()
        breaker = self.make(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()       # the single probe
        assert not breaker.allow()
        breaker.release_probe()      # probe ended undecided
        assert breaker.state == HALF_OPEN
        assert breaker.allow()       # slot reopened for the next request
        breaker.record_success()
        assert breaker.state == CLOSED

    def test_release_probe_outside_half_open_is_a_noop(self):
        breaker = self.make(FakeClock())
        breaker.release_probe()
        assert breaker.state == CLOSED and breaker.allow()


# ----------------------------------------------------------------------
# admission control edge cases
# ----------------------------------------------------------------------
class TestAdmission:
    def test_zero_capacity_sheds_everything(self, service):
        daemon = ErasureDaemon(service, capacity=0, workers=1)
        with pytest.raises(RejectedError) as exc:
            daemon.submit(4)
        assert exc.value.reason == "queue_full"
        assert exc.value.retry_after >= 0.0
        assert daemon.counts["rejected"] == 1
        assert service.erased_clients == []

    def test_full_queue_hint_scales_with_depth(self, service):
        daemon = ErasureDaemon(service, capacity=2, workers=1)
        daemon.submit(4)
        daemon.submit(5)
        with pytest.raises(RejectedError) as exc:
            daemon.submit(6)
        assert exc.value.reason == "queue_full"
        assert exc.value.retry_after > 0.0
        daemon.stop(mode="abort")

    def test_deadline_already_expired_at_enqueue(self, service):
        clock = FakeClock()
        daemon = ErasureDaemon(service, capacity=4, workers=1, clock=clock)
        expired = Deadline(1.0, clock=clock)
        clock.advance(2.0)
        with pytest.raises(DeadlineExceededError):
            daemon.submit(4, deadline=expired)
        assert daemon.counts["deadline"] == 1
        assert service.erased_clients == []

    def test_duplicate_keys_racing_erase_once(self, service):
        # Workers never started: every submission races purely on the
        # admission lock, then a deterministic inline drain serves the
        # queue.  All racers must share one future and one erasure.
        daemon = ErasureDaemon(service, capacity=64, workers=1)
        futures = [None] * 16
        barrier = threading.Barrier(16)

        def racer(i):
            barrier.wait()
            futures[i] = daemon.submit(4, key="erase-4")

        threads = [threading.Thread(target=racer, args=(i,)) for i in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(f is futures[0] for f in futures)
        daemon.stop(mode="drain")
        response = futures[0].result(timeout=5)
        assert response.status == "ok"
        assert service.erased_clients == [4]
        assert daemon.counts["ok"] == 1

    def test_submit_after_stop_is_shutdown_rejection(self, service):
        daemon = ErasureDaemon(service, capacity=4, workers=1)
        daemon.stop(mode="drain")
        with pytest.raises(RejectedError) as exc:
            daemon.submit(4)
        assert exc.value.reason == "shutdown"

    def test_failed_outcome_drops_its_idempotency_key(self, service):
        # Only in-flight and successful outcomes are cached: a request
        # that ends in a deadline abort must drop its key, or the
        # keyed retry replays the stored exception instead of
        # re-executing the erasure.
        clock = FakeClock()
        daemon = ErasureDaemon(service, capacity=8, workers=1, clock=clock)
        future = daemon.submit(4, key="k", deadline=Deadline(1.0, clock=clock))
        clock.advance(2.0)  # expires while queued
        daemon.stop(mode="drain")
        with pytest.raises(DeadlineExceededError):
            future.result(timeout=1)
        assert "k" not in daemon._keys

    def test_keyed_retry_after_failure_reexecutes(self, service):
        calls = {"n": 0}
        original = service.handle_erasure_request

        def flaky_once(client_id, cancel_check=None):
            calls["n"] += 1
            if calls["n"] == 1:
                raise TransientClientError("transient substrate fault")
            return original(client_id, cancel_check=cancel_check)

        service.handle_erasure_request = flaky_once
        daemon = ErasureDaemon(service, capacity=8, workers=1).start()
        try:
            first = daemon.submit(4, key="k")
            with pytest.raises(TransientClientError):
                first.result(timeout=10)
            # The key was dropped before the failure resolved, so the
            # retry gets a fresh submission, not the cached exception.
            second = daemon.submit(4, key="k")
            assert second is not first
            assert second.result(timeout=10).status == "ok"
        finally:
            daemon.stop(mode="drain")
        assert calls["n"] == 2
        assert service.erased_clients == [4]


# ----------------------------------------------------------------------
# shutdown: drain vs abort, both deterministic
# ----------------------------------------------------------------------
class TestShutdown:
    def test_drain_finishes_queued_work(self, service):
        daemon = ErasureDaemon(service, capacity=8, workers=1)
        futures = [daemon.submit(c) for c in (4, 5, 6)]
        daemon.stop(mode="drain")
        for future, cid in zip(futures, (4, 5, 6)):
            assert future.result(timeout=1).outcomes[0].forgotten == [cid]
        assert service.erased_clients == [4, 5, 6]

    def test_abort_fails_queued_work_with_typed_rejections(self, service):
        daemon = ErasureDaemon(service, capacity=8, workers=1)
        futures = [daemon.submit(c) for c in (4, 5, 6)]
        daemon.stop(mode="abort")
        for future in futures:
            with pytest.raises(RejectedError) as exc:
                future.result(timeout=1)
            assert exc.value.reason == "shutdown"
        assert service.erased_clients == []
        assert daemon.counts["rejected"] == 3

    def test_started_daemon_drains_on_stop(self, service):
        daemon = ErasureDaemon(service, capacity=8, workers=2).start()
        futures = [daemon.submit(c) for c in (4, 5)]
        daemon.stop(mode="drain")
        assert {f.result(timeout=5).status for f in futures} == {"ok"}
        assert daemon.status()["queue_depth"] == 0


# ----------------------------------------------------------------------
# deadline aborts mid-replay: cache stays byte-identical
# ----------------------------------------------------------------------
class TestDeadlineAbort:
    def test_mid_replay_abort_salvages_committed_prefix(self):
        record, model = build_record()
        reference = SignRecoveryUnlearner(clip_threshold=CLIP).unlearn(
            record, [4], model
        )
        service = UnlearningService(record=record, model=model, clip_threshold=CLIP)
        calls = {"n": 0}

        def cancel_after_two_rounds():
            calls["n"] += 1
            if calls["n"] > 2:
                raise DeadlineExceededError("expired mid-replay")

        with pytest.raises(DeadlineExceededError):
            service.handle_erasure_request(4, cancel_check=cancel_after_two_rounds)
        # Nothing committed: not erased, nothing purged.
        assert service.erased_clients == []
        # The salvaged prefix makes the retry cheaper AND byte-identical.
        outcome = service.handle_erasure_request(4)
        assert outcome.cached_prefix_rounds > 0
        assert outcome.params.tobytes() == reference.params.tobytes()
        assert outcome.result.stats == reference.stats

    def test_daemon_deadline_abort_then_clean_retry(self, service):
        daemon = ErasureDaemon(service, capacity=4, workers=1).start()
        try:
            try:
                daemon.request(4, deadline=0.0005)
            except DeadlineExceededError:
                pass
            response = daemon.request(4)
            assert response.status == "ok"
            assert response.outcomes[0].forgotten == [4]
        finally:
            daemon.stop(mode="drain")


# ----------------------------------------------------------------------
# degraded modes under an open breaker
# ----------------------------------------------------------------------
class TestDegradedModes:
    def test_serve_stale_answers_with_last_known_good(self, service):
        breaker = CircuitBreaker(failure_threshold=1, window=4, cooldown_seconds=60.0)
        daemon = ErasureDaemon(
            service, capacity=8, workers=1, breaker=breaker,
            degraded_mode="serve_stale",
        )
        daemon.signal_fault(kind="quarantine")
        assert breaker.state == OPEN
        future = daemon.submit(4)
        daemon.stop(mode="drain")
        response = future.result(timeout=1)
        assert response.status == "stale" and response.stale
        assert response.retry_after > 0.0
        # No erasure ran; the answer is the last known-good parameters
        # (no prior success: the trained final model).
        assert service.erased_clients == []
        assert (
            response.params.tobytes()
            == service.record.final_params().tobytes()
        )

    def test_queue_only_holds_until_cooldown_then_serves(self, service):
        breaker = CircuitBreaker(failure_threshold=1, window=4, cooldown_seconds=0.05)
        daemon = ErasureDaemon(
            service, capacity=8, workers=1, breaker=breaker,
            degraded_mode="queue_only",
        ).start()
        try:
            daemon.signal_fault()
            response = daemon.request(4, timeout=10)
            assert response.status == "ok"
            assert breaker.state == CLOSED
            assert breaker.transitions == [OPEN, HALF_OPEN, CLOSED]
        finally:
            daemon.stop(mode="drain")

    def test_queue_only_polices_deadline_while_held(self, service):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, window=4, cooldown_seconds=1e9, clock=clock
        )
        daemon = ErasureDaemon(
            service, capacity=8, workers=1, breaker=breaker,
            degraded_mode="queue_only", clock=clock,
        )
        daemon.signal_fault()
        future = daemon.submit(4, deadline=Deadline(5.0, clock=clock))
        clock.advance(6.0)  # expires while held by the open breaker
        daemon.stop(mode="drain")
        with pytest.raises(DeadlineExceededError):
            future.result(timeout=1)
        assert service.erased_clients == []

    def test_invalid_degraded_mode_rejected(self, service):
        with pytest.raises(ValueError):
            ErasureDaemon(service, degraded_mode="pray")

    def test_breaker_reopens_after_failed_probe_storm(self, service):
        breaker = CircuitBreaker(failure_threshold=2, window=4, cooldown_seconds=60.0)
        daemon = ErasureDaemon(service, capacity=8, workers=1, breaker=breaker)
        daemon.signal_fault(kind="quarantine")
        daemon.signal_fault(kind="corruption")
        assert breaker.state == OPEN
        assert daemon.status()["breaker_state"] == OPEN

    def test_client_error_probe_releases_the_slot(self, service):
        # Half-open probe granted to a request that ends in a client
        # error: the slot must be released so the NEXT request probes —
        # otherwise the breaker wedges half-open and (in serve_stale
        # mode) every future request is answered stale forever.
        service.handle_erasure_request(4)  # makes a later 4 a client error
        breaker = CircuitBreaker(failure_threshold=1, window=4, cooldown_seconds=0.0)
        daemon = ErasureDaemon(service, capacity=8, workers=1, breaker=breaker)
        daemon.signal_fault()  # trip; zero cooldown → next allow() probes
        probe = daemon.submit(4)   # holds the probe, ends in ValueError
        follow = daemon.submit(5)  # must become the next probe, not stale
        daemon.stop(mode="drain")
        with pytest.raises(ValueError):
            probe.result(timeout=1)
        response = follow.result(timeout=1)
        assert response.status == "ok"
        assert breaker.state == CLOSED
        assert service.erased_clients == [4, 5]

    def test_deadline_abort_probe_releases_the_slot(self, service):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, window=4, cooldown_seconds=0.0, clock=clock
        )
        daemon = ErasureDaemon(
            service, capacity=8, workers=1, breaker=breaker, clock=clock
        )
        calls = {"n": 0}
        original = service.handle_erasure_request

        def slow_once(client_id, cancel_check=None):
            calls["n"] += 1
            if calls["n"] == 1:
                clock.advance(5.0)  # the replay outlives the deadline
                cancel_check()      # between-rounds checkpoint: aborts
            return original(client_id, cancel_check=cancel_check)

        service.handle_erasure_request = slow_once
        daemon.signal_fault()
        probe = daemon.submit(4, deadline=Deadline(1.0, clock=clock))
        follow = daemon.submit(5)
        daemon.stop(mode="drain")
        with pytest.raises(DeadlineExceededError):
            probe.result(timeout=1)
        assert follow.result(timeout=1).status == "ok"
        assert breaker.state == CLOSED
        assert service.erased_clients == [5]

    def test_client_errors_do_not_feed_the_breaker(self, service):
        daemon = ErasureDaemon(service, capacity=8, workers=1)
        future = daemon.submit(4, key="a")
        daemon.stop(mode="drain")
        future.result(timeout=1)
        daemon2 = ErasureDaemon(service, capacity=8, workers=1)
        future = daemon2.submit(4)  # already erased: a client error
        daemon2.stop(mode="drain")
        with pytest.raises(ValueError):
            future.result(timeout=1)
        assert daemon2.breaker.state == CLOSED
        assert daemon2.counts["error"] == 1


# ----------------------------------------------------------------------
# retry budget
# ----------------------------------------------------------------------
class TestRetryBudget:
    def failing(self):
        def fn():
            raise TransientClientError("flaky")
        return fn

    def test_budget_stops_retries_early(self):
        policy = RetryPolicy(max_attempts=5, base_delay=1.0, max_delay=8.0)
        outcome = policy.call(self.failing(), budget=0.5)
        assert outcome.attempts == 1
        assert not outcome.succeeded
        assert outcome.budget_exhausted
        assert outcome.total_delay == 0.0

    def test_ample_budget_changes_nothing(self):
        policy = RetryPolicy(max_attempts=3, base_delay=0.1, max_delay=1.0)
        outcome = policy.call(self.failing(), budget=100.0)
        assert outcome.attempts == 3
        assert not outcome.budget_exhausted

    def test_partial_budget_allows_some_retries(self):
        policy = RetryPolicy(
            max_attempts=4, base_delay=1.0, max_delay=8.0, backoff_factor=2.0
        )
        # Schedule is [1, 2, 4]: a budget of 1.5 affords the first
        # retry but not the second.
        outcome = policy.call(self.failing(), budget=1.5)
        assert outcome.attempts == 2
        assert outcome.budget_exhausted
        assert outcome.total_delay == pytest.approx(1.0)

    def test_no_budget_is_the_old_behaviour(self):
        policy = RetryPolicy(max_attempts=2, base_delay=0.1)
        outcome = policy.call(self.failing())
        assert outcome.attempts == 2
        assert not outcome.budget_exhausted

    def test_success_never_reports_exhaustion(self):
        policy = RetryPolicy(max_attempts=3, base_delay=1.0)
        attempts = {"n": 0}

        def sometimes():
            attempts["n"] += 1
            if attempts["n"] < 2:
                raise TransientClientError("once")
            return "fine"

        outcome = policy.call(sometimes, budget=10.0)
        assert outcome.succeeded and outcome.value == "fine"
        assert not outcome.budget_exhausted

    def test_daemon_wires_deadline_into_retry_budget(self, service):
        # A retry policy whose first backoff (10 s) exceeds the request
        # deadline's remaining budget: one transient failure must fail
        # the request immediately instead of backing off past the
        # deadline.
        calls = {"n": 0}
        original = service.handle_erasure_request

        def flaky_once(client_id, cancel_check=None):
            calls["n"] += 1
            if calls["n"] == 1:
                raise TransientClientError("transient substrate fault")
            return original(client_id, cancel_check=cancel_check)

        service.handle_erasure_request = flaky_once
        policy = RetryPolicy(max_attempts=3, base_delay=10.0, max_delay=10.0)
        daemon = ErasureDaemon(
            service, capacity=4, workers=1, retry_policy=policy,
            default_deadline_seconds=1.0,
        )
        future = daemon.submit(4)
        daemon.stop(mode="drain")
        with pytest.raises(TransientClientError):
            future.result(timeout=1)
        assert calls["n"] == 1  # no retry was attempted
        assert service.erased_clients == []


# ----------------------------------------------------------------------
# persist/restore under a service with requests in flight
# ----------------------------------------------------------------------
class TestPersistUnderLoad:
    def test_snapshot_waits_for_inflight_erasure(self, tmp_path):
        record, model = build_record()
        service = UnlearningService(record=record, model=model, clip_threshold=CLIP)
        started = threading.Event()

        def notify_started():
            started.set()

        worker = threading.Thread(
            target=service.handle_erasure_request,
            args=(4,),
            kwargs={"cancel_check": notify_started},
        )
        worker.start()
        started.wait(timeout=10)
        # The erasure holds the service lock: persist must block until
        # it commits, so the snapshot can only be the post-erasure state.
        service.persist(str(tmp_path / "svc"))
        worker.join(timeout=10)
        _, model2 = build_record()
        restored = UnlearningService.restore(
            str(tmp_path / "svc"), model2, clip_threshold=CLIP
        )
        assert restored.erased_clients == [4]
        assert restored.record.num_rounds == NUM_ROUNDS

    def test_snapshot_under_mmap_backend_with_daemon_traffic(self, tmp_path):
        from repro.fl import with_sign_store

        record, model = build_record()
        mmap_record = with_sign_store(
            record, delta=1e-6, backend="mmap",
            directory=str(tmp_path / "store"),
        )
        service = UnlearningService(
            record=mmap_record, model=model, clip_threshold=CLIP
        )
        daemon = ErasureDaemon(service, capacity=8, workers=2).start()
        try:
            futures = [daemon.submit(c) for c in (4, 5, 6)]
            # Snapshot while requests are in flight: the lock serializes
            # against whichever erasure is running, so the manifest is
            # never half-written.
            service.persist(str(tmp_path / "svc"))
            for future in futures:
                future.result(timeout=30)
        finally:
            daemon.stop(mode="drain")
        restored = UnlearningService.restore(
            str(tmp_path / "svc"), model, clip_threshold=CLIP
        )
        # The snapshot is some committed prefix of the erasure stream.
        erased = restored.erased_clients
        assert set(erased).issubset({4, 5, 6})
        assert restored.record.num_rounds == NUM_ROUNDS
        # And the post-drain snapshot holds the full stream.
        service.persist(str(tmp_path / "svc-final"))
        final = UnlearningService.restore(
            str(tmp_path / "svc-final"), model, clip_threshold=CLIP
        )
        assert final.erased_clients == [4, 5, 6]


# ----------------------------------------------------------------------
# telemetry: serving metrics + flusher parity
# ----------------------------------------------------------------------
class TestServingTelemetry:
    def test_daemon_emits_serving_metrics(self, service):
        telemetry = Telemetry()
        with use_telemetry(telemetry):
            daemon = ErasureDaemon(service, capacity=1, workers=1)
            daemon.submit(4, key="a")
            daemon.submit(4, key="a")  # idempotent hit
            with pytest.raises(RejectedError):
                daemon.submit(5)  # second distinct request: queue full
            daemon.stop(mode="drain")
        snapshot = telemetry.registry.snapshot()
        counters = snapshot["counters"]
        assert counters["serving_idempotent_hits_total"][0]["value"] == 1
        assert counters["serving_shed_total"][0]["value"] == 1
        series = {
            (s["labels"]["kind"], s["labels"]["status"]): s["value"]
            for s in counters["serving_requests_total"]
        }
        assert series[("single", "ok")] == 1
        assert series[("single", "rejected")] == 1
        assert snapshot["histograms"]["serving_request_seconds"][0]["count"] == 1

    def test_flusher_keeps_file_in_parity_with_registry(self, tmp_path):
        registry = MetricsRegistry()
        registry.inc("fl_rounds_total", 3)
        registry.set_gauge("fl_participants", 5)
        path = str(tmp_path / "live.prom")
        flusher = PrometheusFlusher(registry, path, interval_seconds=0.01)
        flusher.flush_now()
        first = open(path).read()
        assert "fl_rounds_total 3" in first
        registry.inc("fl_rounds_total", 2)
        flusher.flush_now()
        second = open(path).read()
        assert "fl_rounds_total 5" in second
        # Parity: the file is exactly the live export, including the
        # flush counter accounting for its own writes.
        assert second == export_prometheus(registry)
        assert flusher.flushes == 2
        assert "telemetry_flushes_total 2" in second

    def test_flusher_background_thread_and_final_flush(self, tmp_path):
        registry = MetricsRegistry()
        path = str(tmp_path / "bg.prom")
        flusher = PrometheusFlusher(registry, path, interval_seconds=0.005)
        flusher.start()
        registry.inc("fl_rounds_total", 7)
        flusher.stop(final_flush=True)
        content = open(path).read()
        assert "fl_rounds_total 7" in content
        assert content == export_prometheus(registry)
        assert flusher.flushes >= 1

    def test_flusher_validates_interval(self):
        with pytest.raises(ValueError):
            PrometheusFlusher(MetricsRegistry(), "x.prom", interval_seconds=0)

    def test_daemon_starts_and_stops_flusher(self, service, tmp_path):
        telemetry = Telemetry()
        path = str(tmp_path / "daemon.prom")
        flusher = PrometheusFlusher(telemetry.registry, path, interval_seconds=60.0)
        with use_telemetry(telemetry):
            daemon = ErasureDaemon(
                service, capacity=4, workers=1, flusher=flusher
            ).start()
            daemon.request(4, timeout=30)
            daemon.stop(mode="drain")
        content = open(path).read()
        assert 'serving_requests_total{kind="single",status="ok"} 1' in content
