"""Tests for timer, serialization, and logging utilities."""

import json
import logging
import time

import numpy as np
import pytest

from repro.utils.logging import configure, get_logger
from repro.utils.serialization import load_arrays, load_json, save_arrays, save_json
from repro.utils.timer import Timer


class TestTimer:
    def test_section_accumulates(self):
        timer = Timer()
        with timer.section("work"):
            time.sleep(0.01)
        with timer.section("work"):
            time.sleep(0.01)
        assert timer.total("work") >= 0.02
        assert timer.count("work") == 2

    def test_start_stop(self):
        timer = Timer()
        timer.start("x")
        elapsed = timer.stop("x")
        assert elapsed >= 0.0

    def test_double_start_raises(self):
        timer = Timer()
        timer.start("x")
        with pytest.raises(RuntimeError):
            timer.start("x")

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().stop("x")

    def test_unknown_total_is_zero(self):
        assert Timer().total("nothing") == 0.0

    def test_names_sorted(self):
        timer = Timer()
        for name in ("b", "a"):
            with timer.section(name):
                pass
        assert timer.names() == ["a", "b"]

    def test_summary_mentions_sections(self):
        timer = Timer()
        with timer.section("phase1"):
            pass
        assert "phase1" in timer.summary()


class TestSerialization:
    def test_json_round_trip(self, tmp_path):
        record = {"a": 1, "b": [1.5, 2.5], "nested": {"x": "y"}}
        path = str(tmp_path / "out" / "r.json")
        save_json(path, record)
        assert load_json(path) == record

    def test_json_converts_numpy(self, tmp_path):
        path = str(tmp_path / "r.json")
        save_json(path, {"arr": np.array([1.0, 2.0]), "scalar": np.float64(3.5)})
        loaded = load_json(path)
        assert loaded == {"arr": [1.0, 2.0], "scalar": 3.5}

    def test_json_is_valid_json(self, tmp_path):
        path = str(tmp_path / "r.json")
        save_json(path, {"k": 1})
        with open(path) as fh:
            assert json.load(fh) == {"k": 1}

    def test_arrays_round_trip(self, tmp_path, rng):
        path = str(tmp_path / "a.npz")
        arrays = {"w": rng.normal(size=(4, 5)), "g": rng.normal(size=7)}
        save_arrays(path, arrays)
        loaded = load_arrays(path)
        np.testing.assert_array_equal(loaded["w"], arrays["w"])
        np.testing.assert_array_equal(loaded["g"], arrays["g"])


class TestLogging:
    def test_get_logger_namespaced(self):
        assert get_logger("fl").name == "repro.fl"
        assert get_logger("").name == "repro"
        assert get_logger("repro.x").name == "repro.x"

    def test_configure_idempotent(self):
        configure(logging.WARNING)
        configure(logging.WARNING)
        root = logging.getLogger("repro")
        stream_handlers = [
            h for h in root.handlers
            if isinstance(h, logging.StreamHandler)
            and not isinstance(h, logging.NullHandler)
        ]
        assert len(stream_handlers) == 1
