"""Meta-tests: every public API item is documented and importable.

Deliverable (e) requires doc comments on every public item; this test
makes that an invariant rather than a hope.  "Public" means everything
listed in a package's ``__all__`` plus public methods of those classes.
"""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.attacks",
    "repro.datasets",
    "repro.defenses",
    "repro.eval",
    "repro.faults",
    "repro.fl",
    "repro.iov",
    "repro.nn",
    "repro.parallel",
    "repro.serving",
    "repro.storage",
    "repro.telemetry",
    "repro.unlearning",
    "repro.unlearning.baselines",
    "repro.utils",
]


def public_items():
    for package_name in PACKAGES:
        module = importlib.import_module(package_name)
        for name in getattr(module, "__all__", []):
            yield package_name, name, getattr(module, name)


@pytest.mark.parametrize("package", PACKAGES)
def test_package_importable_with_docstring(package):
    module = importlib.import_module(package)
    assert module.__doc__, f"{package} lacks a module docstring"


@pytest.mark.parametrize(
    "package,name,obj",
    [(p, n, o) for p, n, o in public_items() if callable(o) or inspect.isclass(o)],
    ids=lambda v: v if isinstance(v, str) else "",
)
def test_public_item_documented(package, name, obj):
    if isinstance(obj, str) or not (callable(obj) or inspect.isclass(obj)):
        pytest.skip("not a callable/class")
    assert inspect.getdoc(obj), f"{package}.{name} lacks a docstring"


def test_public_class_methods_documented():
    undocumented = []
    for package, name, obj in public_items():
        if not inspect.isclass(obj):
            continue
        for method_name, method in inspect.getmembers(obj, inspect.isfunction):
            if method_name.startswith("_"):
                continue
            if not inspect.getdoc(method):
                undocumented.append(f"{package}.{name}.{method_name}")
    assert not undocumented, f"undocumented public methods: {undocumented}"


def test_all_lists_are_sorted_sets():
    """__all__ entries must be unique (sorted is a style choice we keep
    loose; uniqueness is a correctness requirement for star-imports)."""
    for package_name in PACKAGES:
        module = importlib.import_module(package_name)
        entries = getattr(module, "__all__", [])
        assert len(entries) == len(set(entries)), f"{package_name}.__all__ has dupes"


def test_all_entries_exist():
    for package_name in PACKAGES:
        module = importlib.import_module(package_name)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{package_name}.__all__ lists missing {name}"
