"""Tests for repro.nn.loss — softmax and fused cross-entropy."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.loss import SoftmaxCrossEntropy, softmax


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        probs = softmax(rng.normal(size=(6, 4)))
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(6))

    def test_shift_invariance(self, rng):
        logits = rng.normal(size=(3, 5))
        np.testing.assert_allclose(softmax(logits), softmax(logits + 100.0))

    def test_large_logits_stable(self):
        probs = softmax(np.array([[1000.0, 0.0], [0.0, -1000.0]]))
        assert np.isfinite(probs).all()
        np.testing.assert_allclose(probs[0], [1.0, 0.0], atol=1e-10)

    def test_uniform_logits(self):
        np.testing.assert_allclose(softmax(np.zeros((1, 4))), np.full((1, 4), 0.25))


class TestSoftmaxCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        logits = np.array([[100.0, 0.0, 0.0]])
        loss, _ = SoftmaxCrossEntropy().forward(logits, np.array([0]))
        assert loss == pytest.approx(0.0, abs=1e-6)

    def test_uniform_loss_is_log_classes(self):
        loss, _ = SoftmaxCrossEntropy().forward(np.zeros((4, 10)), np.zeros(4, dtype=int))
        assert loss == pytest.approx(np.log(10))

    def test_gradient_matches_numerical(self, rng):
        loss_fn = SoftmaxCrossEntropy()
        logits = rng.normal(size=(4, 5))
        labels = rng.integers(0, 5, size=4)
        _, grad = loss_fn.forward(logits, labels)
        eps = 1e-7
        for i in range(4):
            for j in range(5):
                up = logits.copy()
                up[i, j] += eps
                down = logits.copy()
                down[i, j] -= eps
                numeric = (
                    loss_fn.loss_only(up, labels) - loss_fn.loss_only(down, labels)
                ) / (2 * eps)
                assert grad[i, j] == pytest.approx(numeric, abs=1e-6)

    def test_gradient_rows_sum_to_zero(self, rng):
        """softmax-CE gradient rows always sum to 0 (probs sum to 1)."""
        _, grad = SoftmaxCrossEntropy().forward(
            rng.normal(size=(6, 4)), rng.integers(0, 4, size=6)
        )
        np.testing.assert_allclose(grad.sum(axis=1), np.zeros(6), atol=1e-12)

    def test_label_out_of_range_raises(self):
        with pytest.raises(ValueError):
            SoftmaxCrossEntropy().forward(np.zeros((2, 3)), np.array([0, 3]))

    def test_negative_label_raises(self):
        with pytest.raises(ValueError):
            SoftmaxCrossEntropy().forward(np.zeros((2, 3)), np.array([0, -1]))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            SoftmaxCrossEntropy().forward(np.zeros((2, 3)), np.array([0]))

    def test_non_2d_logits_raise(self):
        with pytest.raises(ValueError):
            SoftmaxCrossEntropy().forward(np.zeros(3), np.array([0]))

    @given(st.integers(2, 8), st.integers(1, 6))
    @settings(max_examples=25, deadline=None)
    def test_loss_nonnegative(self, classes, batch):
        rng = np.random.default_rng(classes * 100 + batch)
        logits = rng.normal(size=(batch, classes)) * 5
        labels = rng.integers(0, classes, size=batch)
        loss, _ = SoftmaxCrossEntropy().forward(logits, labels)
        assert loss >= 0.0
