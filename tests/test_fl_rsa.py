"""Tests for the RSA substrate (§III-C, Eqs. 3-4)."""

import numpy as np
import pytest

from repro.datasets import make_synthetic_mnist, partition_iid, train_test_split
from repro.fl import RsaConfig, RsaTrainer, VehicleClient
from repro.nn import accuracy, mlp
from repro.utils.rng import SeedSequenceTree


def build(seed=8, n_clients=6):
    tree = SeedSequenceTree(seed)
    data = make_synthetic_mnist(1200, tree.rng("data"), image_size=16)
    train, test = train_test_split(data, 0.2, tree.rng("split"))
    shards = partition_iid(train, n_clients, tree.rng("part"))
    clients = [
        VehicleClient(i, shards[i], tree.rng(f"c{i}"), batch_size=32)
        for i in range(n_clients)
    ]
    model = mlp(tree.rng("model"), 256, 10, hidden=24)
    return model, clients, test


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"learning_rate": 0.0},
            {"penalty": 0.0},
            {"weight_decay": -1.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RsaConfig(**kwargs)


class TestTrainer:
    def test_converges(self):
        """§III-C: RSA 'can converge to the desirable optimality'."""
        model, clients, test = build()
        trainer = RsaTrainer(model, clients, RsaConfig(learning_rate=2e-3, penalty=0.05))

        def evaluate(params):
            model.set_flat_params(params)
            return accuracy(model.predict(test.x), test.y)

        result = trainer.run(200, eval_fn=evaluate, eval_every=50)
        assert result.history[-1] > 0.8
        # Monotone-ish improvement over the recorded points.
        assert result.history[-1] > result.history[0]

    def test_byzantine_influence_bounded(self):
        """A Byzantine worker sending arbitrary signs cannot prevent
        convergence — its per-round influence is bounded by eta*lambda."""
        model, clients, test = build(seed=9)
        rng = np.random.default_rng(0)
        trainer = RsaTrainer(
            model, clients, RsaConfig(learning_rate=2e-3, penalty=0.05),
            byzantine=[0], byzantine_rng=rng,
        )

        def evaluate(params):
            model.set_flat_params(params)
            return accuracy(model.predict(test.x), test.y)

        result = trainer.run(200, eval_fn=evaluate, eval_every=100)
        assert result.history[-1] > 0.6

    def test_per_round_global_step_bounded(self):
        """|Delta m_0| <= eta * (lambda * n + wd * |m_0|) per element."""
        model, clients, _ = build(seed=10)
        config = RsaConfig(learning_rate=1e-3, penalty=0.05, weight_decay=0.0)
        trainer = RsaTrainer(model, clients, config)
        before = trainer.global_params.copy()
        trainer.run(1)
        step = np.abs(trainer.global_params - before).max()
        assert step <= config.learning_rate * config.penalty * len(clients) + 1e-12

    def test_local_models_diverge_from_global(self):
        model, clients, _ = build(seed=11)
        trainer = RsaTrainer(model, clients, RsaConfig(learning_rate=1e-3, penalty=0.05))
        result = trainer.run(10)
        for params in result.local_params.values():
            assert not np.array_equal(params, result.global_params)

    def test_sign_bytes_accounting(self):
        model, clients, _ = build(seed=12)
        trainer = RsaTrainer(model, clients, RsaConfig())
        result = trainer.run(2)
        d = model.num_params
        assert result.sign_bytes_per_round == ((d + 3) // 4) * len(clients)

    def test_validation(self):
        model, clients, _ = build(seed=13)
        with pytest.raises(ValueError):
            RsaTrainer(model, [])
        with pytest.raises(ValueError):
            RsaTrainer(model, clients, byzantine=[99], byzantine_rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            RsaTrainer(model, clients, byzantine=[0])  # missing rng
        with pytest.raises(ValueError):
            RsaTrainer(model, clients).run(0)
