"""Replay data-path pipeline: round prefetcher + shared decode cache.

The contract under test is the one everything above relies on:
``RoundPrefetcher.fetch(t)`` is **observationally identical** to a
synchronous ``store.get_round(t)`` — same bytes, same failure
semantics (a broken round yields ``None`` and the caller's per-client
fallback takes over) — the pipeline only moves *when* the decode
happens.  The suite covers the degenerate depth-0 path, bitwise
identity across every sign backend, damaged-store fallback, abort
hygiene (no leaked futures, no pinned cache entries), persistence
during an active prefetch, and the shared decode cache's bookkeeping
(LRU bounds, pins, copy-on-discard coherence after ``drop_client``).
"""

import threading

import numpy as np
import pytest

from repro.parallel.executor import make_executor
from repro.storage import (
    MmapSignGradientStore,
    RoundDecodeCache,
    RoundPrefetcher,
    SignGradientStore,
    TieredSignGradientStore,
    default_prefetch_depth,
    set_default_prefetch_depth,
)
from repro.unlearning.recovery import SignRecoveryUnlearner

DELTA = 1e-6
DIM = 41


def _fill(store, rng, rounds=6, clients=5):
    for t in range(rounds):
        store.put_round(
            t, {c: rng.normal(size=DIM) * 1e-3 for c in range(t % 2, clients)}
        )
    return store


def _dict_store(rng, tmp_path):
    return _fill(SignGradientStore(delta=DELTA), rng)


def _mmap_store(rng, tmp_path):
    reference = _fill(SignGradientStore(delta=DELTA), rng)
    return MmapSignGradientStore.from_store(reference, str(tmp_path / "mm"))


def _tiered_cold_store(rng, tmp_path):
    store = TieredSignGradientStore(
        str(tmp_path / "tc"), delta=DELTA, hot_budget_bytes=64
    )
    _fill(store, rng)
    store.flush()
    store.compact(cold_after=1)
    assert store.tier_rounds()["cold"] > 0
    return store


STORES = {
    "dict": _dict_store,
    "mmap": _mmap_store,
    "tiered-cold": _tiered_cold_store,
}


@pytest.fixture(params=sorted(STORES))
def any_store(request, rng, tmp_path):
    return STORES[request.param](rng, tmp_path)


class _FlakyStore:
    """Duck-typed wrapper whose bulk reads fail for chosen rounds —
    the prefetcher must degrade exactly like the synchronous path."""

    supports_bulk_round = True

    def __init__(self, inner, broken_rounds):
        self._inner = inner
        self._broken = set(broken_rounds)

    def get_round(self, t):
        if t in self._broken:
            raise OSError(f"injected fault at round {t}")
        return self._inner.get_round(t)

    def __getattr__(self, name):
        return getattr(self._inner, name)


# ----------------------------------------------------------------------
# depth policy
# ----------------------------------------------------------------------
class TestDepthPolicy:
    def test_default_is_synchronous(self):
        assert default_prefetch_depth() == 0

    def test_set_returns_previous_and_round_trips(self):
        previous = set_default_prefetch_depth(3)
        try:
            assert default_prefetch_depth() == 3
        finally:
            assert set_default_prefetch_depth(previous) == 3
        assert default_prefetch_depth() == previous

    def test_negative_depth_rejected(self):
        with pytest.raises(ValueError):
            set_default_prefetch_depth(-1)

    def test_prefetcher_requires_positive_depth(self, rng, tmp_path):
        store = _dict_store(rng, tmp_path)
        with pytest.raises(ValueError):
            RoundPrefetcher(store, [0], depth=0)

    def test_unlearner_rejects_negative_depth(self):
        with pytest.raises(ValueError):
            SignRecoveryUnlearner(prefetch_depth=-1)


# ----------------------------------------------------------------------
# identity
# ----------------------------------------------------------------------
class TestIdentity:
    def test_fetch_bitwise_matches_sync_get_round(self, any_store):
        rounds = any_store.rounds()
        with RoundPrefetcher(any_store, rounds, depth=3) as pf:
            for t in rounds:
                got = pf.fetch(t)
                expected = any_store.get_round(t)
                assert sorted(got) == sorted(expected)
                for cid in expected:
                    assert got[cid].tobytes() == expected[cid].tobytes()

    def test_fetch_with_shared_cache_matches_sync(self, any_store):
        cache = RoundDecodeCache(max_bytes=1 << 20)
        rounds = any_store.rounds()
        with RoundPrefetcher(any_store, rounds, depth=2, cache=cache) as pf:
            for t in rounds:
                got = pf.fetch(t)
                expected = any_store.get_round(t)
                for cid in expected:
                    assert got[cid].tobytes() == expected[cid].tobytes()
        assert cache.pinned_entries == 0

    def test_out_of_sequence_fetch_decodes_inline(self, any_store):
        rounds = any_store.rounds()
        with RoundPrefetcher(any_store, rounds, depth=2) as pf:
            # Jump straight to the last round: every earlier future is
            # discarded, and the fetch still answers correctly.
            t = rounds[-1]
            got = pf.fetch(t)
            expected = any_store.get_round(t)
            for cid in expected:
                assert got[cid].tobytes() == expected[cid].tobytes()

    def test_damaged_round_yields_none_like_sync_path(self, rng, tmp_path):
        store = _FlakyStore(_dict_store(rng, tmp_path), broken_rounds={2, 4})
        with RoundPrefetcher(store, store.rounds(), depth=3) as pf:
            for t in store.rounds():
                got = pf.fetch(t)
                if t in {2, 4}:
                    assert got is None  # caller falls back per client
                else:
                    assert got is not None

    def test_recovery_identical_at_every_depth(self, small_fl, tmp_path):
        from repro.fl.history import with_sign_store

        record = with_sign_store(
            small_fl["record"],
            delta=0.05,
            backend="tiered",
            directory=str(tmp_path / "rec"),
        )
        model = small_fl["model"]
        forget = [small_fl["forget_id"]]
        baseline = SignRecoveryUnlearner(prefetch_depth=0).unlearn(
            record, forget, model
        )
        for depth in (1, 4):
            got = SignRecoveryUnlearner(prefetch_depth=depth).unlearn(
                record, forget, model
            )
            assert got.params.tobytes() == baseline.params.tobytes()
            assert got.stats == baseline.stats

    def test_recovery_depth_from_global_default(self, small_fl, tmp_path):
        from repro.fl.history import with_sign_store

        record = with_sign_store(
            small_fl["record"],
            delta=0.05,
            backend="tiered",
            directory=str(tmp_path / "rec"),
        )
        model = small_fl["model"]
        forget = [small_fl["forget_id"]]
        baseline = SignRecoveryUnlearner().unlearn(record, forget, model)
        previous = set_default_prefetch_depth(3)
        try:
            got = SignRecoveryUnlearner().unlearn(record, forget, model)
        finally:
            set_default_prefetch_depth(previous)
        assert got.params.tobytes() == baseline.params.tobytes()


# ----------------------------------------------------------------------
# abort hygiene
# ----------------------------------------------------------------------
class TestAbort:
    def test_close_mid_stream_releases_everything(self, any_store):
        cache = RoundDecodeCache(max_bytes=1 << 20)
        pf = RoundPrefetcher(any_store, any_store.rounds(), depth=4, cache=cache)
        pf.fetch(any_store.rounds()[0])
        pf.close()
        assert cache.pinned_entries == 0
        # idempotent
        pf.close()

    def test_cancel_check_stops_lookahead(self, any_store):
        fired = threading.Event()

        def cancel():
            if fired.is_set():
                raise TimeoutError("deadline")

        cache = RoundDecodeCache(max_bytes=1 << 20)
        pf = RoundPrefetcher(
            any_store,
            any_store.rounds(),
            depth=2,
            cache=cache,
            cancel_check=cancel,
        )
        try:
            first = pf.fetch(any_store.rounds()[0])
            assert first is not None
            fired.set()
            # Later fetches still answer (inline re-decode) even though
            # background look-ahead is cancelled.
            t = any_store.rounds()[2]
            got = pf.fetch(t)
            expected = any_store.get_round(t)
            for cid in expected:
                assert got[cid].tobytes() == expected[cid].tobytes()
        finally:
            pf.close()
        assert cache.pinned_entries == 0

    def test_deadline_abort_in_recovery_leaves_no_pins(self, small_fl, tmp_path):
        from repro.fl.history import with_sign_store

        record = with_sign_store(
            small_fl["record"],
            delta=0.05,
            backend="tiered",
            directory=str(tmp_path / "rec"),
        )
        model = small_fl["model"]
        cache = RoundDecodeCache(max_bytes=1 << 22)
        calls = {"n": 0}

        def cancel():
            calls["n"] += 1
            if calls["n"] > 3:
                raise TimeoutError("deadline exceeded")

        unlearner = SignRecoveryUnlearner(
            prefetch_depth=4, decode_cache=cache, cancel_check=cancel
        )
        with pytest.raises(TimeoutError):
            unlearner.unlearn(record, [small_fl["forget_id"]], model)
        assert cache.pinned_entries == 0

    def test_external_executor_survives_close(self, any_store):
        executor = make_executor("thread", 1)
        try:
            with RoundPrefetcher(
                any_store, any_store.rounds(), depth=2, executor=executor
            ) as pf:
                pf.fetch(any_store.rounds()[0])
            # still usable: the prefetcher must not close a borrowed pool
            future = executor.submit(lambda: 7)
            assert future.result(timeout=10) == 7
        finally:
            executor.close()


# ----------------------------------------------------------------------
# persistence + crash safety
# ----------------------------------------------------------------------
class TestPersistence:
    def test_flush_during_active_prefetch_is_safe(self, rng, tmp_path):
        store = _tiered_cold_store(rng, tmp_path)
        rounds = store.rounds()
        with RoundPrefetcher(store, rounds, depth=3) as pf:
            first = pf.fetch(rounds[0])
            assert first is not None
            # Persist mid-stream: flush + a fresh reader must see the
            # full durable state while background decodes are in flight.
            store.flush()
            reopened = TieredSignGradientStore.open(str(tmp_path / "tc"))
            assert reopened.rounds() == rounds
            for t in rounds[1:]:
                got = pf.fetch(t)
                expected = store.get_round(t)
                for cid in expected:
                    assert got[cid].tobytes() == expected[cid].tobytes()

    def test_cached_views_are_read_only(self, any_store):
        cache = RoundDecodeCache(max_bytes=1 << 20)
        with RoundPrefetcher(
            any_store, any_store.rounds(), depth=2, cache=cache
        ) as pf:
            got = pf.fetch(any_store.rounds()[0])
            for arr in got.values():
                assert not arr.flags.writeable
                with pytest.raises((ValueError, RuntimeError)):
                    arr[0] = 123.0

    @pytest.mark.parametrize("seed", [11, 97])
    def test_chaos_faulty_rounds_identical_to_sync(self, seed, tmp_path):
        rng = np.random.default_rng(seed)
        inner = _fill(SignGradientStore(delta=DELTA), rng, rounds=8)
        broken = set(
            int(t) for t in rng.choice(8, size=3, replace=False)
        )
        flaky = _FlakyStore(inner, broken)
        sync = {}
        for t in flaky.rounds():
            try:
                sync[t] = flaky.get_round(t)
            except Exception:
                sync[t] = None
        with RoundPrefetcher(flaky, flaky.rounds(), depth=3) as pf:
            for t in flaky.rounds():
                got = pf.fetch(t)
                if sync[t] is None:
                    assert got is None
                else:
                    for cid in sync[t]:
                        assert got[cid].tobytes() == sync[t][cid].tobytes()


# ----------------------------------------------------------------------
# shared decode cache
# ----------------------------------------------------------------------
class TestDecodeCache:
    def test_hit_miss_accounting(self, rng, tmp_path):
        store = _dict_store(rng, tmp_path)
        cache = RoundDecodeCache(max_bytes=1 << 20)
        value, hit = cache.acquire(store, 0)
        assert not hit and value is not None
        again, hit = cache.acquire(store, 0)
        assert hit
        for arr_a, arr_b in zip(value.values(), again.values()):
            assert arr_a.tobytes() == arr_b.tobytes()
        cache.release(store, 0)
        cache.release(store, 0)
        assert cache.pinned_entries == 0
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate() == pytest.approx(0.5)

    def test_lru_eviction_respects_byte_budget_and_pins(self, rng, tmp_path):
        store = _dict_store(rng, tmp_path)
        one_round = store.get_round(0)
        round_bytes = sum(a.nbytes for a in one_round.values())
        cache = RoundDecodeCache(max_bytes=round_bytes * 2 + 1)
        cache.acquire(store, 0)  # pinned — never evicted
        for t in (1, 2, 3):
            cache.acquire(store, t)
            cache.release(store, t)
        assert cache.evictions > 0
        assert cache.nbytes <= round_bytes * 2 + 1
        # the pinned round survived every eviction
        _, hit = cache.acquire(store, 0)
        assert hit
        cache.release(store, 0)
        cache.release(store, 0)
        assert cache.pinned_entries == 0

    def test_failed_decode_is_not_cached(self, rng, tmp_path):
        flaky = _FlakyStore(_dict_store(rng, tmp_path), broken_rounds={1})
        cache = RoundDecodeCache(max_bytes=1 << 20)
        value, hit = cache.acquire(flaky, 1)
        assert value is None and not hit
        flaky._broken.clear()
        value, hit = cache.acquire(flaky, 1)
        assert value is not None and not hit  # retried, not a stale hit
        cache.release(flaky, 1)

    def test_discard_client_preserves_handed_out_views(self, rng, tmp_path):
        store = _dict_store(rng, tmp_path)
        cache = RoundDecodeCache(max_bytes=1 << 20)
        held, _ = cache.acquire(store, 1)
        held_cid = sorted(held)[0]
        before = held[held_cid].tobytes()
        dropped = cache.discard_client(store, held_cid)
        assert dropped >= 1
        # the dict already handed out still has the client (copy-on-discard)
        assert held[held_cid].tobytes() == before
        # but a fresh acquire of the same round no longer includes it
        fresh, hit = cache.acquire(store, 1)
        assert hit and held_cid not in fresh
        cache.release(store, 1)
        cache.release(store, 1)

    def test_invalidate_clears_one_store_only(self, rng, tmp_path):
        store_a = _dict_store(rng, tmp_path)
        store_b = _dict_store(np.random.default_rng(5), tmp_path)
        cache = RoundDecodeCache(max_bytes=1 << 20)
        cache.acquire(store_a, 0)
        cache.release(store_a, 0)
        cache.acquire(store_b, 0)
        cache.release(store_b, 0)
        assert cache.invalidate(store_a) == 1
        _, hit_b = cache.acquire(store_b, 0)
        assert hit_b
        cache.release(store_b, 0)

    def test_service_erasure_discards_purged_client(self, small_fl, tmp_path):
        from repro.fl.history import with_sign_store
        from repro.unlearning.service import UnlearningService

        record = with_sign_store(
            small_fl["record"],
            delta=0.05,
            backend="tiered",
            directory=str(tmp_path / "svc"),
        )
        service = UnlearningService(
            record=record, model=small_fl["model"], prefetch_depth=2
        )
        service.handle_erasure_request(small_fl["forget_id"])
        cache = service.decode_cache
        assert cache is not None
        store = record.gradients
        for t in store.rounds():
            value, hit = cache.acquire(store, t)
            if value is None:
                continue
            assert small_fl["forget_id"] not in value
            cache.release(store, t)
        assert service.drain_prefetch()
        assert service.decode_cache is None
