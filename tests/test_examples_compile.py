"""The examples must at least compile and expose a main() entry point.

(Executing them takes ~30-60 s each, so full runs live outside the test
suite; every example was exercised end-to-end during development and is
driven by the same public API the integration tests cover.)
"""

import ast
import pathlib
import py_compile

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    assert len(EXAMPLES) >= 5, "expected at least five example scripts"


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path, tmp_path):
    py_compile.compile(str(path), cfile=str(tmp_path / "out.pyc"), doraise=True)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_has_main_and_docstring(path):
    tree = ast.parse(path.read_text())
    assert ast.get_docstring(tree), f"{path.name} lacks a module docstring"
    functions = [n.name for n in ast.walk(tree) if isinstance(n, ast.FunctionDef)]
    assert "main" in functions, f"{path.name} lacks a main() function"


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_imports_only_public_api(path):
    """Examples must demonstrate the public surface: imports come from
    ``repro`` subpackages (not private modules) and the stdlib."""
    tree = ast.parse(path.read_text())
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module:
            if node.module.startswith("repro"):
                parts = node.module.split(".")
                assert all(not p.startswith("_") for p in parts), (
                    f"{path.name} imports private module {node.module}"
                )
