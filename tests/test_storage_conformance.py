"""Backend-conformance suite for the ``GradientStore`` sign backends.

One parameterized module exercises the full contract — put/get/rounds/
clients_at/has/items/nbytes/drop_client/get_round — across every sign
backend (dict, mmap, tiered, and a tiered variant whose rounds have
been demoted to the compressed cold tier), all against the dict store
as the reference.  Any future backend gets added to ``BACKENDS`` and
inherits the whole suite, so read surfaces can't silently drift.
"""

import numpy as np
import pytest

from repro.storage import (
    MmapSignGradientStore,
    SignGradientStore,
    TieredSignGradientStore,
)
from repro.storage.store import GradientStore

DELTA = 1e-6
DIM = 57


def _reference_store(rng):
    """Dict store with mixed cohort sizes plus a single-client round."""
    store = SignGradientStore(delta=DELTA)
    for t in range(4):
        store.put_round(
            t, {c: rng.normal(size=DIM) * 1e-3 for c in range(t % 3 + 1, 5)}
        )
    store.put(4, 2, rng.normal(size=DIM))
    return store


def _build_dict(reference, tmp_path):
    store = SignGradientStore(delta=DELTA)
    for (t, cid), (packed, length) in reference.items():
        store.put_encoded(t, cid, packed, length)
    return store, None


def _build_mmap(reference, tmp_path):
    directory = str(tmp_path / "mmap-layout")
    store = MmapSignGradientStore.from_store(reference, directory)
    return store, lambda: MmapSignGradientStore.open(directory)


def _build_tiered(reference, tmp_path):
    directory = str(tmp_path / "tiered-layout")
    # tiny hot budget so the suite exercises the warm/spill path
    store = TieredSignGradientStore(directory, delta=DELTA, hot_budget_bytes=64)
    for (t, cid), (packed, length) in reference.items():
        store.put_encoded(t, cid, packed, length)
    store.flush()
    return store, lambda: TieredSignGradientStore.open(directory)


def _build_tiered_cold(reference, tmp_path):
    directory = str(tmp_path / "tiered-cold-layout")
    store = TieredSignGradientStore(directory, delta=DELTA, hot_budget_bytes=64)
    for (t, cid), (packed, length) in reference.items():
        store.put_encoded(t, cid, packed, length)
    store.flush()
    store.compact(cold_after=1)  # demote everything but the newest round
    assert store.tier_rounds()["cold"] > 0
    return store, lambda: TieredSignGradientStore.open(directory)


BACKENDS = {
    "dict": _build_dict,
    "mmap": _build_mmap,
    "tiered": _build_tiered,
    "tiered-cold": _build_tiered_cold,
}


@pytest.fixture(params=sorted(BACKENDS))
def backend(request, rng, tmp_path):
    reference = _reference_store(rng)
    store, reopen = BACKENDS[request.param](reference, tmp_path)
    return {"name": request.param, "reference": reference, "store": store,
            "reopen": reopen}


def _assert_same_view(reference, store):
    assert store.rounds() == reference.rounds()
    for t in reference.rounds():
        assert store.clients_at(t) == reference.clients_at(t)
        bulk = store.get_round(t)
        expected = reference.get_round(t)
        assert sorted(bulk) == sorted(expected)
        for cid in expected:
            np.testing.assert_array_equal(bulk[cid], expected[cid])
            np.testing.assert_array_equal(store.get(t, cid), reference.get(t, cid))
            assert store.has(t, cid)


class TestReadSurface:
    def test_bitwise_identical_to_reference(self, backend):
        _assert_same_view(backend["reference"], backend["store"])

    def test_items_match(self, backend):
        ref_items = backend["reference"].items()
        got_items = backend["store"].items()
        assert len(ref_items) == len(got_items)
        for (rk, (rp, rl)), (gk, (gp, gl)) in zip(ref_items, got_items):
            assert rk == gk and rl == gl
            np.testing.assert_array_equal(np.asarray(gp), np.asarray(rp))

    def test_missing_round_is_empty(self, backend):
        assert backend["store"].get_round(99) == {}
        assert backend["store"].clients_at(99) == []

    def test_missing_client_raises_keyerror(self, backend):
        store = backend["store"]
        assert not store.has(0, 999)
        with pytest.raises(KeyError):
            store.get(0, 999)

    def test_delta_carried(self, backend):
        assert backend["store"].delta == DELTA

    def test_bulk_round_flag_is_honest(self, backend):
        store = backend["store"]
        if getattr(store, "supports_bulk_round", False):
            t = backend["reference"].rounds()[0]
            assert sorted(store.get_round(t)) == backend["reference"].clients_at(t)


class TestBulkFallbackParity:
    """The base-class ``get_round`` (one batched ``decode_round`` pass
    over ``encoded_round``) must be bitwise identical to each backend's
    native bulk read *and* to the per-client ``get`` loop — the three
    paths a replay can take depending on flags and fault fallbacks."""

    def test_base_batched_decode_matches_native_bulk(self, backend):
        store = backend["store"]
        for t in store.rounds():
            base = GradientStore.get_round(store, t)
            native = store.get_round(t)
            assert sorted(base) == sorted(native)
            for cid in native:
                assert base[cid].tobytes() == native[cid].tobytes()

    def test_bulk_matches_per_client_gets(self, backend):
        store = backend["store"]
        for t in store.rounds():
            bulk = store.get_round(t)
            for cid in store.clients_at(t):
                assert bulk[cid].tobytes() == store.get(t, cid).tobytes()

    def test_base_fallback_survives_drop(self, backend):
        backend["reference"].drop_client(2)
        backend["store"].drop_client(2)
        store = backend["store"]
        for t in store.rounds():
            base = GradientStore.get_round(store, t)
            expected = backend["reference"].get_round(t)
            assert sorted(base) == sorted(expected)
            for cid in expected:
                assert base[cid].tobytes() == expected[cid].tobytes()


class TestNbytes:
    def test_nbytes_matches_oracle(self, backend):
        store = backend["store"]
        assert store.nbytes() == store.recount_nbytes()
        assert store.nbytes() > 0

    def test_nbytes_tracks_reference_for_raw_layouts(self, backend):
        # cold tiers account compressed block bytes, so only the
        # raw-payload backends owe byte-exact equality with the dict view
        if backend["name"] == "tiered-cold":
            pytest.skip("cold tier accounts compressed bytes")
        assert backend["store"].nbytes() == backend["reference"].nbytes()


class TestDropClient:
    def test_drop_matches_reference(self, backend):
        expected = backend["reference"].drop_client(2)
        assert backend["store"].drop_client(2) == expected
        _assert_same_view(backend["reference"], backend["store"])
        assert not backend["store"].has(4, 2)
        with pytest.raises(KeyError):
            backend["store"].get(4, 2)

    def test_double_drop_returns_zero(self, backend):
        assert backend["store"].drop_client(1) > 0
        assert backend["store"].drop_client(1) == 0

    def test_drop_unknown_client_is_noop(self, backend):
        assert backend["store"].drop_client(999) == 0
        _assert_same_view(backend["reference"], backend["store"])

    def test_drop_keeps_nbytes_oracle_consistent(self, backend):
        store = backend["store"]
        before = store.nbytes()
        store.drop_client(2)
        assert store.nbytes() == store.recount_nbytes()
        assert store.nbytes() < before


class TestRestart:
    def test_view_survives_reopen(self, backend):
        if backend["reopen"] is None:
            pytest.skip("in-memory backend has no restart path")
        _assert_same_view(backend["reference"], backend["reopen"]())

    def test_drop_survives_reopen(self, backend):
        if backend["reopen"] is None:
            pytest.skip("in-memory backend has no restart path")
        backend["reference"].drop_client(3)
        backend["store"].drop_client(3)
        _assert_same_view(backend["reference"], backend["reopen"]())
