"""Unit tests for the repro.faults subsystem.

Fast, deterministic checks of the fault-plan generator, the update
corruptors, the server-side validation gate, and the retry policy.
The heavier end-to-end chaos scenarios (kill/resume, disk rot) live in
``test_chaos.py``.
"""

import numpy as np
import pytest

from repro.faults import (
    CORRUPTION_MODES,
    ClientFault,
    FaultPlan,
    RetryPolicy,
    TransientClientError,
    UpdateValidator,
    corrupt_update,
)
from repro.iov import V2iLink


class TestClientFault:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            ClientFault("meltdown")

    def test_corrupt_requires_mode(self):
        with pytest.raises(ValueError, match="corrupt fault needs a mode"):
            ClientFault("corrupt")

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            ClientFault("straggle", delay_seconds=-1.0)


class TestFaultPlan:
    def test_random_is_deterministic_per_seed(self):
        kwargs = dict(
            client_ids=range(8),
            rounds=30,
            crash_rate=0.05,
            corrupt_rate=0.1,
            straggle_rate=0.05,
            flaky_rate=0.1,
        )
        a = FaultPlan.random(seed=42, **kwargs)
        b = FaultPlan.random(seed=42, **kwargs)
        c = FaultPlan.random(seed=43, **kwargs)
        assert a.client_faults == b.client_faults
        assert a.client_faults != c.client_faults

    def test_rates_control_fault_mix(self):
        plan = FaultPlan.random(
            range(10), rounds=100, seed=7, crash_rate=0.2, corrupt_rate=0.0
        )
        counts = plan.counts()
        assert counts["corrupt"] == 0
        # 1000 draws at 20% — far from zero, far from all.
        assert 100 < counts["crash"] < 300

    def test_rates_must_sum_to_at_most_one(self):
        with pytest.raises(ValueError, match="sum to <= 1"):
            FaultPlan.random(range(3), rounds=5, seed=0, crash_rate=0.6, corrupt_rate=0.5)

    def test_corruption_rng_reproducible_per_site(self):
        plan = FaultPlan(seed=9)
        a = plan.corruption_rng(3, 1).random(4)
        b = plan.corruption_rng(3, 1).random(4)
        other = plan.corruption_rng(3, 2).random(4)
        np.testing.assert_array_equal(a, b)
        assert not np.array_equal(a, other)

    def test_kill_after(self):
        plan = FaultPlan(server_kills={4, 9})
        assert plan.kill_after(4)
        assert not plan.kill_after(5)

    def test_deadline_without_link_uses_fallback(self):
        plan = FaultPlan(fallback_deadline=7.5)
        assert plan.deadline(5, 1000) == 7.5

    def test_deadline_with_link_scales_with_round_time(self):
        from repro.iov.comm import round_time

        link = V2iLink()
        plan = FaultPlan(link=link, deadline_factor=2.0)
        expected = 2.0 * round_time(link, 5, 1000)
        assert plan.deadline(5, 1000) == pytest.approx(expected)


class TestCorruptUpdate:
    @pytest.fixture
    def update(self):
        return np.linspace(-1.0, 1.0, 200)

    def test_input_never_mutated(self, update):
        original = update.copy()
        for mode in CORRUPTION_MODES:
            corrupt_update(update, mode, np.random.default_rng(0))
            np.testing.assert_array_equal(update, original)

    def test_nan_and_inf_inject_nonfinite(self, update):
        for mode in ("nan", "inf"):
            out = corrupt_update(update, mode, np.random.default_rng(1))
            assert not np.isfinite(out).all()

    def test_shape_changes_length(self, update):
        out = corrupt_update(update, "shape", np.random.default_rng(2))
        assert out.size != update.size

    def test_scale_blows_up_norm(self, update):
        out = corrupt_update(update, "scale", np.random.default_rng(3))
        assert np.linalg.norm(out) > 1e3 * np.linalg.norm(update)

    def test_unknown_mode_rejected(self, update):
        with pytest.raises(ValueError, match="unknown corruption mode"):
            corrupt_update(update, "gremlins", np.random.default_rng(4))


class TestUpdateValidator:
    def test_structural_rejections(self):
        v = UpdateValidator()
        dim = 10
        good = np.ones(dim)
        assert v.check(good, dim).ok
        assert not v.check(np.ones(dim + 1), dim).ok
        assert not v.check(np.ones((2, 5)), dim).ok
        bad = good.copy()
        bad[3] = np.nan
        assert not v.check(bad, dim).ok
        bad[3] = np.inf
        assert not v.check(bad, dim).ok

    def test_cohort_catches_outlier_at_round_zero(self):
        """No history yet — the round cohort alone must convict."""
        v = UpdateValidator(relative_factor=25.0)
        updates = {cid: np.full(8, 0.1) for cid in range(4)}
        updates[2] = np.full(8, 1e6)
        verdicts = v.check_round(updates, expected_dim=8)
        assert not verdicts[2].ok
        assert all(verdicts[c].ok for c in (0, 1, 3))

    def test_outlier_cannot_vouch_for_itself(self):
        """The reference pool for each update excludes that update."""
        v = UpdateValidator(relative_factor=5.0, min_pool=2)
        updates = {0: np.full(8, 0.1), 1: np.full(8, 0.1), 2: np.full(8, 100.0)}
        verdicts = v.check_round(updates, expected_dim=8)
        assert not verdicts[2].ok

    def test_absolute_cap(self):
        v = UpdateValidator(max_norm=1.0)
        assert not v.check(np.full(8, 10.0), 8).ok

    def test_history_round_trips_through_journal_api(self):
        v = UpdateValidator()
        v.check_round({c: np.full(8, 0.1) for c in range(4)}, expected_dim=8)
        norms = v.observed_norms()
        assert len(norms) == 4
        w = UpdateValidator()
        w.restore_norms(norms)
        assert w.observed_norms() == norms


class TestRetryPolicy:
    def test_backoff_schedule_is_capped_exponential(self):
        policy = RetryPolicy(max_attempts=5, base_delay=0.1, max_delay=0.5)
        assert policy.delays() == pytest.approx([0.1, 0.2, 0.4, 0.5])

    def test_succeeds_after_transient_failures(self):
        calls = [0]

        def flaky():
            calls[0] += 1
            if calls[0] < 3:
                raise TransientClientError("hiccup")
            return "ok"

        outcome = RetryPolicy(max_attempts=3).call(flaky)
        assert outcome.succeeded and outcome.value == "ok"
        assert outcome.attempts == 3
        assert outcome.total_delay == pytest.approx(0.1 + 0.2)

    def test_gives_up_after_max_attempts(self):
        def always_fails():
            raise TransientClientError("down")

        outcome = RetryPolicy(max_attempts=2).call(always_fails)
        assert not outcome.succeeded
        assert outcome.attempts == 2

    def test_non_transient_errors_propagate(self):
        def broken():
            raise KeyError("not transient")

        with pytest.raises(KeyError):
            RetryPolicy(max_attempts=3).call(broken)
