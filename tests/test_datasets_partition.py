"""Tests for repro.datasets.partition — client splits."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import (
    ArrayDataset,
    partition_by_class,
    partition_dirichlet,
    partition_iid,
)


@pytest.fixture
def dataset(rng):
    return ArrayDataset(
        x=rng.normal(size=(120, 4)),
        y=rng.integers(0, 5, size=120),
        num_classes=5,
    )


def total_samples(shards):
    return sum(len(s) for s in shards)


def all_disjoint_and_complete(dataset, shards):
    rows = [x.tobytes() for s in shards for x in s.x]
    return len(rows) == len(set(rows)) == len(dataset)


class TestIid:
    def test_complete_partition(self, dataset, rng):
        shards = partition_iid(dataset, 8, rng)
        assert total_samples(shards) == len(dataset)
        assert all_disjoint_and_complete(dataset, shards)

    def test_near_equal_sizes(self, dataset, rng):
        shards = partition_iid(dataset, 7, rng)
        sizes = [len(s) for s in shards]
        assert max(sizes) - min(sizes) <= 1

    def test_too_many_clients_raises(self, dataset, rng):
        with pytest.raises(ValueError):
            partition_iid(dataset, 1000, rng)

    def test_zero_clients_raises(self, dataset, rng):
        with pytest.raises(ValueError):
            partition_iid(dataset, 0, rng)

    @given(st.integers(1, 12))
    @settings(max_examples=12, deadline=None)
    def test_any_client_count_is_complete(self, clients):
        rng = np.random.default_rng(0)
        ds = ArrayDataset(
            x=rng.normal(size=(60, 3)), y=rng.integers(0, 4, 60), num_classes=4
        )
        shards = partition_iid(ds, clients, rng)
        assert total_samples(shards) == 60


class TestDirichlet:
    def test_complete_partition(self, dataset, rng):
        shards = partition_dirichlet(dataset, 6, rng, alpha=0.5)
        assert total_samples(shards) == len(dataset)
        assert all_disjoint_and_complete(dataset, shards)

    def test_min_samples_respected(self, dataset, rng):
        shards = partition_dirichlet(dataset, 5, rng, alpha=1.0, min_samples=3)
        assert all(len(s) >= 3 for s in shards)

    def test_low_alpha_more_skewed(self, rng):
        ds = ArrayDataset(
            x=rng.normal(size=(2000, 2)),
            y=rng.integers(0, 10, size=2000),
            num_classes=10,
        )

        def skew(alpha, seed):
            shards = partition_dirichlet(ds, 10, np.random.default_rng(seed), alpha=alpha)
            props = np.stack(
                [s.class_counts() / max(1, len(s)) for s in shards]
            )
            return float(props.std())

        assert skew(0.1, 1) > skew(100.0, 2)

    def test_invalid_alpha(self, dataset, rng):
        with pytest.raises(ValueError):
            partition_dirichlet(dataset, 4, rng, alpha=0.0)


class TestByClass:
    def test_complete(self, dataset, rng):
        shards = partition_by_class(dataset, 6, rng, classes_per_client=2)
        assert total_samples(shards) == len(dataset)

    def test_label_concentration(self, rng):
        ds = ArrayDataset(
            x=rng.normal(size=(400, 2)),
            y=np.repeat(np.arange(4), 100),
            num_classes=4,
        )
        shards = partition_by_class(ds, 4, rng, classes_per_client=1)
        for shard in shards:
            present = np.unique(shard.y)
            assert len(present) <= 2  # shard boundaries may straddle a class

    def test_invalid_classes_per_client(self, dataset, rng):
        with pytest.raises(ValueError):
            partition_by_class(dataset, 4, rng, classes_per_client=0)
