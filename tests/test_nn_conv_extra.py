"""Additional convolution coverage: stride/padding combinations, batch
independence, and paper-profile architecture shapes."""

import numpy as np
import pytest

from repro.nn import gtsrb_cnn, mnist_cnn
from repro.nn.layers import Conv2d, MaxPool2d, im2col


class TestConvShapes:
    @pytest.mark.parametrize(
        "h,k,stride,pad,expected",
        [
            (8, 3, 1, 0, 6),
            (8, 3, 1, 1, 8),
            (8, 3, 2, 1, 4),
            (9, 3, 2, 0, 4),
            (7, 5, 1, 2, 7),
            (6, 1, 1, 0, 6),
        ],
    )
    def test_output_spatial_size(self, rng, h, k, stride, pad, expected):
        layer = Conv2d(1, 2, kernel_size=k, rng=rng, stride=stride, padding=pad)
        out = layer.forward(rng.normal(size=(1, 1, h, h)), training=False)
        assert out.shape[2] == expected and out.shape[3] == expected

    def test_batch_samples_independent(self, rng):
        """Each batch element's output depends only on its own input."""
        layer = Conv2d(2, 3, kernel_size=3, rng=rng, padding=1)
        x = rng.normal(size=(4, 2, 6, 6))
        full = layer.forward(x, training=False)
        for i in range(4):
            single = layer.forward(x[i : i + 1], training=False)
            np.testing.assert_allclose(full[i : i + 1], single, atol=1e-12)

    def test_backward_gradients_accumulate_over_batch(self, rng):
        """Weight gradient of a batch == sum of per-sample gradients."""
        layer = Conv2d(1, 2, kernel_size=3, rng=rng, padding=1)
        x = rng.normal(size=(3, 1, 5, 5))
        dout = rng.normal(size=(3, 2, 5, 5))
        layer.forward(x, training=True)
        layer.backward(dout)
        batch_grad = layer.grad_weight.copy()
        acc = np.zeros_like(batch_grad)
        for i in range(3):
            layer.forward(x[i : i + 1], training=True)
            layer.backward(dout[i : i + 1])
            acc += layer.grad_weight
        np.testing.assert_allclose(batch_grad, acc, atol=1e-10)

    def test_stride_larger_than_kernel(self, rng):
        layer = Conv2d(1, 1, kernel_size=2, rng=rng, stride=3)
        out = layer.forward(rng.normal(size=(1, 1, 8, 8)), training=False)
        assert out.shape == (1, 1, 3, 3)


class TestIm2colEdge:
    def test_single_pixel_kernel(self, rng):
        x = rng.normal(size=(2, 3, 4, 4))
        col, oh, ow = im2col(x, 1, 1, 1, 0)
        assert (oh, ow) == (4, 4)
        assert col.shape == (2 * 16, 3)

    def test_kernel_equals_input(self, rng):
        x = rng.normal(size=(1, 2, 5, 5))
        col, oh, ow = im2col(x, 5, 5, 1, 0)
        assert (oh, ow) == (1, 1)
        np.testing.assert_allclose(col.ravel(), x.reshape(1, -1).ravel())


class TestPoolSizes:
    @pytest.mark.parametrize("pool", [1, 2, 4])
    def test_pool_sizes(self, rng, pool):
        layer = MaxPool2d(pool)
        x = rng.normal(size=(2, 3, 8, 8))
        out = layer.forward(x, training=False)
        assert out.shape == (2, 3, 8 // pool, 8 // pool)


class TestPaperArchitectures:
    def test_mnist_cnn_paper_profile_size(self):
        """The paper-profile MNIST CNN is the size the benchmark
        assumes (storage accounting and hvp micro-benchmarks)."""
        model = mnist_cnn(np.random.default_rng(0), image_size=28, hidden=64)
        assert model.num_params == 52138

    def test_gtsrb_cnn_trainable_end_to_end(self, rng):
        model = gtsrb_cnn(np.random.default_rng(1), image_size=32)
        x = rng.random((4, 3, 32, 32))
        y = rng.integers(0, 10, size=4)
        loss1, grad = model.loss_and_flat_grad(x, y)
        model.set_flat_params(model.get_flat_params() - 0.01 * grad)
        loss2, _ = model.loss_and_flat_grad(x, y)
        assert loss2 < loss1
