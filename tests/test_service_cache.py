"""Amortized erasure serving: batch == singles == cold, bitwise.

The contract under test (`docs/ARCHITECTURE.md`, "Erasure serving"):
serving N queued erasure requests through
:meth:`UnlearningService.handle_erasure_batch` returns, per request,
parameters and stats **byte-identical** to

- serving the same requests one at a time on a fresh service, and
- a cache-less :class:`SignRecoveryUnlearner` replaying the request's
  cumulative forget set cold on an unpurged record —

while the prefix cache amortizes the shared replay prefix
(``cached_prefix_rounds`` > 0 for every request after the first).  The
identity must survive seeds, an active fault plan during training,
persist/restore, and the dict vs mmap sign-store backends.

:class:`ReplayPrefixCache` itself is unit-tested at the bottom:
hit/miss/rounds-saved accounting, subset reuse with the participation
divergence bound, LRU eviction, and the no-reuse conditions.
"""

import shutil

import numpy as np
import pytest

from repro.datasets import make_synthetic_mnist, partition_iid
from repro.faults import ClientFault, FaultPlan
from repro.fl import (
    FederatedSimulation,
    ParticipationSchedule,
    VehicleClient,
    with_sign_store,
)
from repro.nn import mlp
from repro.storage import FullGradientStore, MmapSignGradientStore
from repro.unlearning import ReplayPrefixCache, SignRecoveryUnlearner, UnlearningService
from repro.utils.rng import SeedSequenceTree

NUM_ROUNDS = 12
NUM_CLIENTS = 8
IMAGE = 8
FEATURES = IMAGE * IMAGE
#: Late joiners — the erasure requests.  Staggered joins make each
#: batch request's divergence round strictly later than the previous
#: one's, so amortization is visible, not incidental.
JOINS = {5: 3, 6: 6, 7: 9}
CLIP = 5.0


def build_record(seed, fault_plan=None, backend="dict", directory=None):
    """Train a tiny but real FL run and return (sign_record, model).

    Rebuilt identically from its seed, so every comparison baseline
    replays the same history.
    """
    tree = SeedSequenceTree(seed)
    data = make_synthetic_mnist(200, tree.rng("data"), image_size=IMAGE)
    shards = partition_iid(data, NUM_CLIENTS, tree.rng("part"))
    clients = [
        VehicleClient(i, shards[i], tree.rng(f"c{i}"), batch_size=16)
        for i in range(NUM_CLIENTS)
    ]
    model = mlp(tree.rng("model"), FEATURES, 10, hidden=8)
    schedule = ParticipationSchedule.with_events(range(NUM_CLIENTS), joins=JOINS)
    kwargs = {} if fault_plan is None else {"fault_plan": fault_plan}
    sim = FederatedSimulation(
        model,
        clients,
        2e-3,
        schedule=schedule,
        gradient_store=FullGradientStore(),
        **kwargs,
    )
    record = sim.run(NUM_ROUNDS)
    sign = with_sign_store(record, delta=1e-6, backend=backend, directory=directory)
    return sign, model


def build_service(seed, **kwargs):
    record, model = build_record(seed, **kwargs)
    return UnlearningService(record=record, model=model, clip_threshold=CLIP)


def cold_reference(seed, forget_ids, fault_plan=None):
    """Cache-less cold replay on a fresh, unpurged record.

    Ground truth for one request's cumulative forget set: no cache, no
    prior purges (purging a forgotten client's gradients cannot change
    the replay — forgotten clients never contribute to it).
    """
    record, model = build_record(seed, fault_plan=fault_plan)
    unlearner = SignRecoveryUnlearner(clip_threshold=CLIP)
    return unlearner.unlearn(record, sorted(forget_ids), model)


def assert_outcome_matches(outcome, reference):
    """Byte-identical parameters AND identical stats."""
    assert outcome.params.tobytes() == reference.params.tobytes()
    assert outcome.result.rounds_replayed == reference.rounds_replayed
    assert outcome.result.stats == reference.stats


# ----------------------------------------------------------------------
# the headline identity: batch == singles == cold
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", [3, 11])
class TestBatchEqualsIndependent:
    def test_batch_matches_cold_references(self, seed):
        service = build_service(seed)
        outcomes = service.handle_erasure_batch([5, 6, 7])
        assert [o.forgotten for o in outcomes] == [[5], [6], [7]]
        forget = set()
        for cid, outcome in zip([5, 6, 7], outcomes):
            forget.add(cid)
            assert_outcome_matches(outcome, cold_reference(seed, forget))

    def test_batch_matches_sequential_singles(self, seed):
        batch = build_service(seed).handle_erasure_batch([5, 6, 7])
        singles_service = build_service(seed)
        singles = [singles_service.handle_erasure_request(c) for c in [5, 6, 7]]
        for b, s in zip(batch, singles):
            assert b.params.tobytes() == s.params.tobytes()
            assert b.result.stats == s.result.stats
            assert b.cached_prefix_rounds == s.cached_prefix_rounds

    def test_batch_amortizes_later_requests(self, seed):
        service = build_service(seed)
        outcomes = service.handle_erasure_batch([5, 6, 7])
        # Request 1 is cold; each later request resumes at its own
        # vehicle's join round (the trajectories are identical before
        # that client ever participated).
        assert outcomes[0].cached_prefix_rounds == 0
        assert outcomes[1].cached_prefix_rounds == JOINS[6] - JOINS[5]
        assert outcomes[2].cached_prefix_rounds == JOINS[7] - JOINS[5]
        cache = service.prefix_cache
        assert cache.misses == 1
        assert cache.hits == 2
        assert cache.rounds_saved == (JOINS[6] - JOINS[5]) + (JOINS[7] - JOINS[5])


@pytest.mark.parametrize("seed", [3])
class TestBatchUnderFaults:
    #: Non-fatal client faults during training: two upload crashes.
    #: The record then has genuine dropouts for the replay to skip over.
    PLAN = FaultPlan(
        client_faults={
            (4, 1): ClientFault("crash"),
            (8, 6): ClientFault("crash"),
        },
        seed=99,
    )

    def test_batch_matches_cold_with_fault_plan(self, seed):
        record, model = build_record(seed, fault_plan=self.PLAN)
        service = UnlearningService(record=record, model=model, clip_threshold=CLIP)
        outcomes = service.handle_erasure_batch([5, 6, 7])
        assert outcomes[1].cached_prefix_rounds > 0
        forget = set()
        for cid, outcome in zip([5, 6, 7], outcomes):
            forget.add(cid)
            assert_outcome_matches(
                outcome, cold_reference(seed, forget, fault_plan=self.PLAN)
            )


class TestBatchAfterPersistRestore:
    def test_restored_service_serves_identical_batch(self, tmp_path):
        seed = 3
        first = build_service(seed)
        first.handle_erasure_request(5)
        first.persist(str(tmp_path / "svc"))
        _, model = build_record(seed)
        restored = UnlearningService.restore(
            str(tmp_path / "svc"), model, clip_threshold=CLIP
        )
        assert restored.erased_clients == [5]
        outcomes = restored.handle_erasure_batch([6, 7])
        forget = {5}
        for cid, outcome in zip([6, 7], outcomes):
            forget.add(cid)
            assert_outcome_matches(outcome, cold_reference(seed, forget))
        # The restored service starts with a cold cache, but its second
        # batch request still amortizes against its own first.
        assert outcomes[0].cached_prefix_rounds == 0
        assert outcomes[1].cached_prefix_rounds > 0


class TestBackendIdentity:
    def test_mmap_backend_serves_byte_identical_batch(self, tmp_path):
        seed = 11
        dict_outcomes = build_service(seed).handle_erasure_batch([5, 6, 7])
        mmap_service = build_service(
            seed, backend="mmap", directory=str(tmp_path / "store")
        )
        assert isinstance(mmap_service.record.gradients, MmapSignGradientStore)
        try:
            mmap_outcomes = mmap_service.handle_erasure_batch([5, 6, 7])
            for d, m in zip(dict_outcomes, mmap_outcomes):
                assert d.params.tobytes() == m.params.tobytes()
                assert d.result.stats == m.result.stats
                assert d.cached_prefix_rounds == m.cached_prefix_rounds
                assert d.purged_records == m.purged_records
        finally:
            shutil.rmtree(mmap_service.record.gradients.directory, ignore_errors=True)


# ----------------------------------------------------------------------
# batch validation: all-upfront, nothing erased on a malformed batch
# ----------------------------------------------------------------------
class TestBatchValidation:
    def test_empty_batch_is_a_noop(self):
        service = build_service(3)
        assert service.handle_erasure_batch([]) == []
        assert service.erased_clients == []

    def test_duplicates_rejected_before_any_erasure(self):
        service = build_service(3)
        with pytest.raises(ValueError, match="duplicate"):
            service.handle_erasure_batch([5, 6, 5])
        assert service.erased_clients == []

    def test_unknown_client_rejected_before_any_erasure(self):
        service = build_service(3)
        before = service.record.gradients.nbytes()
        with pytest.raises(ValueError, match="unknown"):
            service.handle_erasure_batch([5, 42])
        assert service.erased_clients == []
        assert service.record.gradients.nbytes() == before

    def test_already_erased_skipped_idempotently(self):
        # Batch resubmission is idempotent: already-erased ids are
        # skipped (no outcome), not rejected — only single-request
        # erasure still raises on double erasure.
        service = build_service(3)
        service.handle_erasure_request(5)
        outcomes = service.handle_erasure_batch([6, 5])
        assert [o.forgotten for o in outcomes] == [[6]]
        assert service.erased_clients == [5, 6]
        with pytest.raises(ValueError, match="already erased"):
            service.handle_erasure_request(5)

    def test_fully_served_resubmission_returns_current_state(self):
        service = build_service(3)
        outcomes = service.handle_erasure_batch([5, 6])
        retry = service.handle_erasure_batch([5, 6])
        # One no-op outcome carrying the standing counterfactual
        # parameters, byte-identical to the last real erasure's.
        assert len(retry) == 1
        assert retry[0].forgotten == []
        assert retry[0].purged_records == 0
        assert retry[0].params.tobytes() == outcomes[-1].params.tobytes()
        assert service.erased_clients == [5, 6]

    def test_aborted_batch_completes_on_verbatim_resubmission(self):
        # The serving-layer scenario: a deadline abort mid-batch leaves
        # the already-committed prefix erased; resubmitting the SAME
        # batch must serve the unserved suffix instead of raising.
        service = build_service(3)

        def cancel_after_first_commit():
            if service.erased_clients:
                raise TimeoutError("deadline expired mid-batch")

        with pytest.raises(TimeoutError):
            service.handle_erasure_batch(
                [5, 6], cancel_check=cancel_after_first_commit
            )
        assert service.erased_clients == [5]
        outcomes = service.handle_erasure_batch([5, 6])
        assert [o.forgotten for o in outcomes] == [[6]]
        assert service.erased_clients == [5, 6]
        assert_outcome_matches(outcomes[-1], cold_reference(3, [5, 6]))


# ----------------------------------------------------------------------
# ReplayPrefixCache unit tests (driven through real replays)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def replay_setup():
    record, model = build_record(3)
    return record, model


def run(cache, record, model, forget_ids):
    unlearner = SignRecoveryUnlearner(clip_threshold=CLIP, prefix_cache=cache)
    result = unlearner.unlearn(record, sorted(forget_ids), model)
    return result, unlearner.last_cached_prefix_rounds


class TestReplayPrefixCache:
    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            ReplayPrefixCache(max_entries=0)

    def test_cold_run_is_a_miss_and_stores_one_entry(self, replay_setup):
        record, model = replay_setup
        cache = ReplayPrefixCache()
        _, cached = run(cache, record, model, {5})
        assert (cache.hits, cache.misses, len(cache)) == (0, 1, 1)
        assert cached == 0

    def test_superset_resumes_at_divergence_round(self, replay_setup):
        record, model = replay_setup
        cache = ReplayPrefixCache()
        cold, _ = run(cache, record, model, {5})
        superset, cached = run(cache, record, model, {5, 6})
        # Client 6 first participates at its join round: everything
        # before that is shared prefix.
        assert cached == JOINS[6] - JOINS[5]
        assert cache.hits == 1
        assert cache.rounds_saved == cached
        # And the amortized result is the true cold one.
        reference = SignRecoveryUnlearner(clip_threshold=CLIP).unlearn(
            record, [5, 6], model
        )
        assert superset.params.tobytes() == reference.params.tobytes()
        assert superset.stats == reference.stats
        assert cold.stats["resumed_from"] is None
        assert superset.stats["resumed_from"] is None

    def test_identical_repeat_replays_zero_rounds(self, replay_setup):
        record, model = replay_setup
        cache = ReplayPrefixCache()
        cold, _ = run(cache, record, model, {5})
        again, cached = run(cache, record, model, {5})
        # The final snapshot covers the whole window: nothing replays.
        assert cached == NUM_ROUNDS - JOINS[5]
        assert again.params.tobytes() == cold.params.tobytes()
        assert again.stats == cold.stats

    def test_different_backtrack_round_never_reuses(self, replay_setup):
        record, model = replay_setup
        cache = ReplayPrefixCache()
        run(cache, record, model, {5})
        # {6} alone backtracks to 6's join round — a different anchor,
        # hence a different trajectory: must miss.
        _, cached = run(cache, record, model, {6})
        assert cached == 0
        assert cache.hits == 0
        assert cache.misses == 2

    def test_different_hyperparameters_never_reuse(self, replay_setup):
        record, model = replay_setup
        cache = ReplayPrefixCache()
        run(cache, record, model, {5})
        other = SignRecoveryUnlearner(
            clip_threshold=CLIP, refresh_period=3, prefix_cache=cache
        )
        other.unlearn(record, [5], model)
        assert other.last_cached_prefix_rounds == 0
        assert cache.hits == 0

    def test_lru_eviction_at_capacity(self, replay_setup):
        record, model = replay_setup
        cache = ReplayPrefixCache(max_entries=1)
        run(cache, record, model, {5})
        run(cache, record, model, {6})  # different anchor: new entry
        assert (len(cache), cache.evictions) == (1, 1)
        # The {5} entry is gone — a {5, 6} request can only miss now
        # ({6}'s entry has the wrong backtrack round).
        _, cached = run(cache, record, model, {5, 6})
        assert cached == 0
