"""Tests for aggregation rules, incl. hypothesis properties for FedAvg."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fl import coordinate_median, fedavg, trimmed_mean
from repro.fl.aggregation import AGGREGATORS


class TestFedAvg:
    def test_equal_weights_is_mean(self, rng):
        grads = [rng.normal(size=8) for _ in range(4)]
        out = fedavg(grads, [1.0] * 4)
        np.testing.assert_allclose(out, np.mean(grads, axis=0))

    def test_weighting_eq1(self):
        """Eq. 1: dataset-size-weighted average."""
        out = fedavg([np.array([0.0]), np.array([3.0])], [1, 2])
        assert out[0] == pytest.approx(2.0)

    def test_single_client(self, rng):
        g = rng.normal(size=5)
        np.testing.assert_allclose(fedavg([g], [7]), g)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            fedavg([], [])

    def test_weight_count_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            fedavg([rng.normal(size=3)], [1, 2])

    def test_negative_weight_raises(self, rng):
        with pytest.raises(ValueError):
            fedavg([rng.normal(size=3)] * 2, [1, -1])

    def test_zero_total_weight_raises(self, rng):
        with pytest.raises(ValueError):
            fedavg([rng.normal(size=3)] * 2, [0, 0])

    @given(st.integers(1, 8), st.integers(1, 16))
    @settings(max_examples=30, deadline=None)
    def test_convexity_property(self, n, d):
        """FedAvg output is inside the coordinate-wise envelope."""
        rng = np.random.default_rng(n * 100 + d)
        grads = [rng.normal(size=d) for _ in range(n)]
        weights = rng.uniform(0.1, 5.0, size=n)
        out = fedavg(grads, weights)
        stacked = np.stack(grads)
        assert (out >= stacked.min(axis=0) - 1e-12).all()
        assert (out <= stacked.max(axis=0) + 1e-12).all()

    @given(st.integers(2, 6))
    @settings(max_examples=20, deadline=None)
    def test_permutation_invariance(self, n):
        rng = np.random.default_rng(n)
        grads = [rng.normal(size=4) for _ in range(n)]
        weights = list(rng.uniform(0.5, 2.0, size=n))
        out1 = fedavg(grads, weights)
        order = rng.permutation(n)
        out2 = fedavg([grads[i] for i in order], [weights[i] for i in order])
        np.testing.assert_allclose(out1, out2)

    def test_scale_invariant_in_weights(self, rng):
        grads = [rng.normal(size=4) for _ in range(3)]
        w = [1.0, 2.0, 3.0]
        np.testing.assert_allclose(fedavg(grads, w), fedavg(grads, [10 * x for x in w]))


class TestMedian:
    def test_resists_outlier(self, rng):
        honest = [np.ones(4) for _ in range(4)]
        attacker = [np.full(4, 1e9)]
        out = coordinate_median(honest + attacker)
        np.testing.assert_allclose(out, np.ones(4))

    def test_odd_count_exact(self):
        out = coordinate_median([np.array([1.0]), np.array([5.0]), np.array([3.0])])
        assert out[0] == 3.0


class TestTrimmedMean:
    def test_drops_extremes(self):
        grads = [np.array([v]) for v in [0.0, 1.0, 2.0, 3.0, 100.0]]
        out = trimmed_mean(grads, trim_fraction=0.2)
        assert out[0] == pytest.approx(2.0)

    def test_invalid_fraction(self, rng):
        with pytest.raises(ValueError):
            trimmed_mean([rng.normal(size=2)] * 3, trim_fraction=0.5)

    def test_never_trims_everything(self, rng):
        """With trim_fraction < 0.5, at least one gradient survives."""
        out = trimmed_mean([rng.normal(size=2)] * 2, trim_fraction=0.49)
        assert np.isfinite(out).all()


class TestRegistry:
    def test_contains_paper_rule(self):
        assert "fedavg" in AGGREGATORS

    def test_all_callable(self, rng):
        grads = [rng.normal(size=3) for _ in range(5)]
        for rule in AGGREGATORS.values():
            out = rule(grads, [1.0] * 5)
            assert out.shape == (3,)
