"""Tests for repro.utils.rng — deterministic hierarchical streams."""

import numpy as np
import pytest

from repro.utils.rng import SeedSequenceTree, new_rng, spawn_rngs, stable_hash


class TestNewRng:
    def test_same_seed_same_stream(self):
        a = new_rng(7)
        b = new_rng(7)
        assert a.random() == b.random()

    def test_different_seed_different_stream(self):
        assert new_rng(7).random() != new_rng(8).random()


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(1, 5)) == 5

    def test_zero_count(self):
        assert spawn_rngs(1, 0) == []

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(1, -1)

    def test_children_independent(self):
        children = spawn_rngs(1, 4)
        draws = [c.random() for c in children]
        assert len(set(draws)) == 4

    def test_deterministic(self):
        a = [g.random() for g in spawn_rngs(9, 3)]
        b = [g.random() for g in spawn_rngs(9, 3)]
        assert a == b


class TestSeedSequenceTree:
    def test_same_name_same_stream(self):
        tree = SeedSequenceTree(5)
        assert tree.rng("x").random() == tree.rng("x").random()

    def test_different_names_differ(self):
        tree = SeedSequenceTree(5)
        assert tree.rng("x").random() != tree.rng("y").random()

    def test_name_isolation_from_other_requests(self):
        """Requesting extra streams must not perturb existing ones."""
        t1 = SeedSequenceTree(5)
        v1 = t1.rng("target").random()
        t2 = SeedSequenceTree(5)
        t2.rng("unrelated-a")
        t2.rng("unrelated-b")
        assert t2.rng("target").random() == v1

    def test_root_seed_changes_streams(self):
        assert SeedSequenceTree(1).rng("x").random() != SeedSequenceTree(2).rng("x").random()

    def test_child_tree_deterministic(self):
        a = SeedSequenceTree(5).child("sub").rng("x").random()
        b = SeedSequenceTree(5).child("sub").rng("x").random()
        assert a == b

    def test_child_tree_differs_from_parent(self):
        tree = SeedSequenceTree(5)
        assert tree.child("sub").rng("x").random() != tree.rng("x").random()

    def test_integers_helper(self):
        tree = SeedSequenceTree(5)
        vals = tree.integers("ints", 0, 10, 100)
        assert vals.shape == (100,)
        assert vals.min() >= 0 and vals.max() < 10

    def test_spawn_under_name(self):
        tree = SeedSequenceTree(5)
        gens = tree.spawn("workers", 3)
        assert len(gens) == 3
        assert len({g.random() for g in gens}) == 3


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash(["a", "b"]) == stable_hash(["a", "b"])

    def test_order_sensitive(self):
        assert stable_hash(["a", "b"]) != stable_hash(["b", "a"])

    def test_empty(self):
        assert isinstance(stable_hash([]), int)
