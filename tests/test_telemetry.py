"""Unit tests for the telemetry subsystem (repro.telemetry).

Covers the strict registry, histogram aggregation, span nesting, the
null default, JSONL sink round-trips (replay rebuilds an identical
registry), Prometheus text formatting (including label escaping), the
CSV exporter, and the run summary.
"""

import json
import math
import os

import pytest

from repro.telemetry import (
    DEFAULT_BUCKETS,
    METRICS,
    HistogramState,
    JsonlSink,
    MetricsRegistry,
    MetricSpec,
    NullTelemetry,
    Telemetry,
    current_telemetry,
    export_csv,
    export_prometheus,
    format_run_summary,
    read_events,
    replay_events,
    set_telemetry,
    trace_span,
    use_telemetry,
    write_prometheus,
    write_run_summary,
)
from repro.telemetry.catalog import COUNTER, GAUGE, HISTOGRAM


def loose_catalog(**specs):
    """Build a small catalog for tests that need custom metrics."""
    out = {}
    for name, (kind, labels) in specs.items():
        out[name] = MetricSpec(
            name=name, kind=kind, unit="units", module="tests", help=name,
            labels=tuple(labels),
        )
    return out


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
class TestMetricsRegistry:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.inc("fl_rounds_total")
        reg.inc("fl_rounds_total", 4)
        assert reg.counter_value("fl_rounds_total") == 5.0

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.inc("fl_rounds_total", -1)

    def test_gauge_last_value_wins(self):
        reg = MetricsRegistry()
        reg.set_gauge("fl_participants", 3)
        reg.set_gauge("fl_participants", 7)
        assert reg.gauge_value("fl_participants") == 7.0

    def test_gauge_unset_is_none(self):
        assert MetricsRegistry().gauge_value("fl_participants") is None

    def test_labelled_series_are_independent(self):
        reg = MetricsRegistry()
        reg.inc("fl_faults_injected_total", labels={"kind": "crash"})
        reg.inc("fl_faults_injected_total", 2, labels={"kind": "straggle"})
        assert reg.counter_value("fl_faults_injected_total", {"kind": "crash"}) == 1.0
        assert reg.counter_value("fl_faults_injected_total", {"kind": "straggle"}) == 2.0
        assert len(reg.series("fl_faults_injected_total")) == 2

    def test_strict_rejects_unknown_name(self):
        reg = MetricsRegistry()
        with pytest.raises(KeyError):
            reg.inc("made_up_metric_total")

    def test_strict_rejects_kind_mismatch(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.set_gauge("fl_rounds_total", 1.0)  # declared counter

    def test_strict_rejects_wrong_label_keys(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.inc("fl_faults_injected_total")  # missing required 'kind'
        with pytest.raises(ValueError):
            reg.inc("fl_rounds_total", labels={"kind": "x"})  # extra key

    def test_non_strict_accepts_anything(self):
        reg = MetricsRegistry(strict=False)
        reg.inc("anything_goes_total", labels={"x": "y"})
        assert reg.counter_value("anything_goes_total", {"x": "y"}) == 1.0

    def test_names_emitted_and_kind_of(self):
        reg = MetricsRegistry()
        reg.inc("fl_rounds_total")
        reg.set_gauge("fl_participants", 1)
        reg.observe("fl_round_seconds", 0.1)
        assert reg.names_emitted() == [
            "fl_participants", "fl_round_seconds", "fl_rounds_total",
        ]
        assert reg.kind_of("fl_rounds_total") == COUNTER
        assert reg.kind_of("fl_participants") == GAUGE
        assert reg.kind_of("fl_round_seconds") == HISTOGRAM
        assert reg.kind_of("fl_eval_accuracy") is None

    def test_snapshot_schema(self):
        reg = MetricsRegistry()
        reg.inc("fl_rounds_total", 3)
        reg.set_gauge("fl_eval_accuracy", 0.5)
        reg.observe("fl_round_seconds", 2.0)
        reg.observe("fl_round_seconds", 4.0)
        snap = reg.snapshot()
        assert set(snap) == {"counters", "gauges", "histograms"}
        assert snap["counters"]["fl_rounds_total"] == [{"labels": {}, "value": 3.0}]
        assert snap["gauges"]["fl_eval_accuracy"] == [{"labels": {}, "value": 0.5}]
        (hist,) = snap["histograms"]["fl_round_seconds"]
        assert hist["count"] == 2 and hist["sum"] == 6.0 and hist["mean"] == 3.0
        assert hist["min"] == 2.0 and hist["max"] == 4.0
        json.dumps(snap)  # must be JSON-serializable


class TestHistogramState:
    def test_stats(self):
        h = HistogramState()
        for v in (0.5, 1.5, 2.5):
            h.observe(v)
        assert h.count == 3
        assert h.sum == pytest.approx(4.5)
        assert h.mean == pytest.approx(1.5)
        assert h.min == 0.5 and h.max == 2.5

    def test_empty_as_dict_has_no_infinities(self):
        d = HistogramState().as_dict()
        assert d["count"] == 0 and d["min"] == 0.0 and d["max"] == 0.0

    def test_cumulative_buckets_monotone_and_complete(self):
        h = HistogramState()
        values = [1e-7, 0.02, 0.3, 7.0, 500.0]
        for v in values:
            h.observe(v)
        cum = h.cumulative_buckets()
        assert cum == sorted(cum)
        assert cum[-1] == len(values)  # all values within the largest bound
        # each value lands in the first bucket whose bound contains it
        assert cum[0] == 1  # 1e-7 <= 1e-6


# ----------------------------------------------------------------------
# telemetry facade + spans
# ----------------------------------------------------------------------
class TestTelemetry:
    def test_span_feeds_histogram_of_same_name(self):
        tm = Telemetry()
        with tm.span("fl_round_seconds"):
            pass
        hist = tm.registry.histogram("fl_round_seconds")
        assert hist is not None and hist.count == 1
        assert hist.sum >= 0.0

    def test_span_nesting_depths(self):
        tm = Telemetry()
        with tm.span("fl_round_seconds") as outer:
            with tm.span("fl_client_update_seconds") as inner:
                assert inner.depth == 1
            assert outer.depth == 0
        assert tm.registry.histogram("fl_client_update_seconds").count == 1

    def test_kwargs_become_labels(self):
        tm = Telemetry()
        tm.inc("fl_faults_injected_total", kind="crash")
        assert tm.registry.counter_value(
            "fl_faults_injected_total", {"kind": "crash"}
        ) == 1.0

    def test_null_telemetry_is_inert(self):
        null = NullTelemetry()
        assert null.enabled is False
        with null.span("anything"):  # undeclared name: must not raise
            null.inc("whatever")
            null.set_gauge("whatever", 1)
            null.observe("whatever", 1)
            null.emit_event("whatever")
        null.close()
        assert null.registry.names_emitted() == []

    def test_null_span_is_shared(self):
        null = NullTelemetry()
        assert null.span("a") is null.span("b")

    def test_use_telemetry_installs_and_restores(self):
        before = current_telemetry()
        tm = Telemetry()
        with use_telemetry(tm):
            assert current_telemetry() is tm
            with trace_span("fl_round_seconds"):
                pass
        assert current_telemetry() is before
        assert tm.registry.histogram("fl_round_seconds").count == 1

    def test_set_telemetry_returns_previous_and_none_means_null(self):
        previous = set_telemetry(None)
        try:
            assert current_telemetry().enabled is False
        finally:
            set_telemetry(previous)


# ----------------------------------------------------------------------
# JSONL sink + replay round-trip
# ----------------------------------------------------------------------
class TestJsonlRoundTrip:
    def test_events_are_ordered_and_timestamped(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        tm = Telemetry(sinks=[JsonlSink(path)])
        tm.emit_event("run_start", note="hello")
        tm.inc("fl_rounds_total")
        with tm.span("fl_round_seconds"):
            pass
        tm.close()
        events = read_events(path)
        assert [e["event"] for e in events] == ["run_start", "metric", "span"]
        assert [e["seq"] for e in events] == [0, 1, 2]
        assert all(e["t_s"] >= 0 for e in events)

    def test_replay_rebuilds_equal_registry(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        tm = Telemetry(sinks=[JsonlSink(path)])
        tm.inc("fl_rounds_total", 3)
        tm.set_gauge("fl_eval_accuracy", 0.75)
        tm.observe("fl_client_update_bytes", 4096)
        tm.inc("storage_put_bytes_total", 128, backend="sign")
        with tm.span("fl_round_seconds"):
            pass
        tm.close()
        replayed = replay_events(read_events(path))
        assert replayed.snapshot() == tm.registry.snapshot()

    def test_no_sink_means_no_events_but_registry_fills(self):
        tm = Telemetry()
        tm.inc("fl_rounds_total")
        tm.emit_event("ignored")  # no sink: silently dropped
        assert tm.registry.counter_value("fl_rounds_total") == 1.0

    def test_sink_creates_parent_dirs_and_close_is_idempotent(self, tmp_path):
        path = str(tmp_path / "deep" / "nested" / "events.jsonl")
        sink = JsonlSink(path)
        sink.write({"event": "x"})
        sink.close()
        sink.close()
        assert read_events(path) == [{"event": "x"}]


# ----------------------------------------------------------------------
# exporters
# ----------------------------------------------------------------------
class TestPrometheusExport:
    def test_counter_and_gauge_lines(self):
        reg = MetricsRegistry()
        reg.inc("fl_rounds_total", 5)
        reg.set_gauge("fl_eval_accuracy", 0.875)
        text = export_prometheus(reg)
        assert "# TYPE fl_rounds_total counter" in text
        assert "fl_rounds_total 5" in text
        assert "# TYPE fl_eval_accuracy gauge" in text
        assert "fl_eval_accuracy 0.875" in text
        assert text.endswith("\n")

    def test_help_lines_come_from_catalog(self):
        reg = MetricsRegistry()
        reg.inc("fl_rounds_total")
        text = export_prometheus(reg)
        assert f"# HELP fl_rounds_total {METRICS['fl_rounds_total'].help}" in text

    def test_labels_rendered_sorted(self):
        reg = MetricsRegistry()
        reg.inc("storage_put_bytes_total", 10, labels={"backend": "sign"})
        text = export_prometheus(reg)
        assert 'storage_put_bytes_total{backend="sign"} 10' in text

    def test_label_value_escaping(self):
        catalog = loose_catalog(weird_total=(COUNTER, ("tag",)))
        reg = MetricsRegistry(catalog=catalog)
        reg.inc("weird_total", labels={"tag": 'a"b\\c\nd'})
        text = export_prometheus(reg)
        assert 'weird_total{tag="a\\"b\\\\c\\nd"} 1' in text

    def test_histogram_buckets_sum_count(self):
        reg = MetricsRegistry()
        reg.observe("fl_round_seconds", 0.02)
        reg.observe("fl_round_seconds", 3.0)
        text = export_prometheus(reg)
        assert "# TYPE fl_round_seconds histogram" in text
        # 0.02 lands in le=0.025; both values within le=5.0; +Inf = count
        assert 'fl_round_seconds_bucket{le="0.025"} 1' in text
        assert 'fl_round_seconds_bucket{le="5"} 2' in text
        assert 'fl_round_seconds_bucket{le="+Inf"} 2' in text
        assert "fl_round_seconds_sum 3.02" in text
        assert "fl_round_seconds_count 2" in text

    def test_bucket_counts_are_cumulative(self):
        reg = MetricsRegistry()
        for v in (0.001, 0.001, 1.0):
            reg.observe("fl_round_seconds", v)
        text = export_prometheus(reg)
        counts = []
        for line in text.splitlines():
            if line.startswith("fl_round_seconds_bucket"):
                counts.append(int(line.rsplit(" ", 1)[1]))
        assert counts == sorted(counts)
        assert counts[-1] == 3
        assert len(counts) == len(DEFAULT_BUCKETS) + 1  # + the +Inf bucket

    def test_write_prometheus(self, tmp_path):
        reg = MetricsRegistry()
        reg.inc("fl_rounds_total")
        path = str(tmp_path / "out" / "metrics.prom")
        write_prometheus(reg, path)
        with open(path) as fh:
            assert "fl_rounds_total 1" in fh.read()


class TestCsvExport:
    def test_rows_and_header(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        tm = Telemetry(sinks=[JsonlSink(path)])
        tm.inc("fl_rounds_total")
        with tm.span("fl_round_seconds"):
            pass
        tm.emit_event("experiment_start", experiment="table1")
        tm.close()
        out = str(tmp_path / "metrics.csv")
        rows = export_csv(read_events(path), out)
        assert rows == 3
        with open(out) as fh:
            lines = fh.read().splitlines()
        assert lines[0] == "seq,t_s,event,name,kind,value,depth,labels"
        assert len(lines) == 4
        assert "fl_rounds_total" in lines[1]
        assert "fl_round_seconds" in lines[2]

    def test_labels_column_is_json(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        tm = Telemetry(sinks=[JsonlSink(path)])
        tm.inc("storage_put_bytes_total", 64, backend="sign")
        tm.close()
        out = str(tmp_path / "metrics.csv")
        export_csv(read_events(path), out)
        with open(out) as fh:
            body = fh.read()
        assert '""backend"": ""sign""' in body or '"backend": "sign"' in body


class TestRunSummary:
    def test_contains_sections_values_and_units(self):
        reg = MetricsRegistry()
        reg.inc("fl_rounds_total", 12)
        reg.set_gauge("fl_eval_accuracy", 0.9)
        reg.observe("fl_round_seconds", 0.25)
        text = format_run_summary(reg)
        assert text.startswith("== run summary ==")
        assert "counters:" in text and "gauges:" in text and "histograms:" in text
        assert "fl_rounds_total  12 rounds" in text
        assert "fl_eval_accuracy  0.9 fraction" in text
        assert "count=1" in text and "seconds" in text

    def test_label_suffix_rendered(self):
        reg = MetricsRegistry()
        reg.set_gauge("storage_compression_ratio", 0.0625, {"backend": "sign"})
        assert "storage_compression_ratio{backend=sign}" in format_run_summary(reg)

    def test_write_run_summary(self, tmp_path):
        reg = MetricsRegistry()
        reg.inc("fl_rounds_total")
        path = str(tmp_path / "summary.txt")
        write_run_summary(reg, path, title="demo")
        with open(path) as fh:
            content = fh.read()
        assert content.startswith("== demo ==")
        assert content.endswith("\n")


# ----------------------------------------------------------------------
# catalog sanity
# ----------------------------------------------------------------------
class TestCatalog:
    def test_every_spec_is_well_formed(self):
        for name, spec in METRICS.items():
            assert spec.name == name
            assert spec.kind in (COUNTER, GAUGE, HISTOGRAM)
            assert spec.unit and spec.module and spec.help
            assert spec.module.startswith("repro.")
            assert name == name.lower()
            assert isinstance(spec.labels, tuple)

    def test_naming_conventions(self):
        for name, spec in METRICS.items():
            if name.endswith("_total"):
                assert spec.kind == COUNTER, name
            if spec.kind == COUNTER:
                assert name.endswith("_total"), name
            if name.endswith("_seconds"):
                assert spec.kind == HISTOGRAM, name
                assert spec.unit == "seconds", name

    def test_every_emitting_module_exists(self):
        import importlib

        for module in sorted({s.module for s in METRICS.values()}):
            importlib.import_module(module)
