"""Tests for repro.nn.zoo — the paper's architectures."""

import numpy as np
import pytest

from repro.nn import gtsrb_cnn, mlp, mnist_cnn, tiny_cnn
from repro.nn.layers import Conv2d, Dense


class TestMnistCnn:
    def test_paper_architecture(self, rng):
        """The paper's MNIST model has two conv and two dense layers."""
        model = mnist_cnn(rng)
        convs = [l for l in model.layers if isinstance(l, Conv2d)]
        denses = [l for l in model.layers if isinstance(l, Dense)]
        assert len(convs) == 2
        assert len(denses) == 2

    def test_forward_shape(self, rng):
        model = mnist_cnn(rng, image_size=28)
        out = model.forward(rng.random((2, 1, 28, 28)), training=False)
        assert out.shape == (2, 10)

    def test_custom_size(self, rng):
        model = mnist_cnn(rng, image_size=16, num_classes=4)
        out = model.forward(rng.random((1, 1, 16, 16)), training=False)
        assert out.shape == (1, 4)

    def test_deterministic_init(self):
        a = mnist_cnn(np.random.default_rng(3)).get_flat_params()
        b = mnist_cnn(np.random.default_rng(3)).get_flat_params()
        np.testing.assert_array_equal(a, b)


class TestGtsrbCnn:
    def test_paper_architecture(self, rng):
        """The paper's GTSRB model has two conv and one dense layer."""
        model = gtsrb_cnn(rng)
        convs = [l for l in model.layers if isinstance(l, Conv2d)]
        denses = [l for l in model.layers if isinstance(l, Dense)]
        assert len(convs) == 2
        assert len(denses) == 1

    def test_forward_shape(self, rng):
        model = gtsrb_cnn(rng, image_size=32)
        out = model.forward(rng.random((2, 3, 32, 32)), training=False)
        assert out.shape == (2, 10)


class TestTinyCnn:
    def test_forward_and_backward(self, rng):
        model = tiny_cnn(rng)
        x = rng.random((3, 1, 12, 12))
        y = rng.integers(0, 4, size=3)
        loss, grad = model.loss_and_flat_grad(x, y)
        assert np.isfinite(loss)
        assert grad.shape == (model.num_params,)


class TestMlp:
    def test_smaller_than_cnn(self, rng):
        assert (
            mlp(rng, 400, 10, hidden=32).num_params
            < mnist_cnn(np.random.default_rng(0), image_size=20).num_params * 10
        )

    def test_depth(self, rng):
        deep = mlp(rng, 20, 3, hidden=8, depth=3)
        shallow = mlp(np.random.default_rng(0), 20, 3, hidden=8, depth=1)
        assert deep.num_params > shallow.num_params
