"""Tests for repro.nn.layers — shapes, numerical gradients, error paths."""

import numpy as np
import pytest

from repro.nn.layers import (
    Conv2d,
    Dense,
    Dropout,
    Flatten,
    MaxPool2d,
    ReLU,
    Tanh,
    col2im,
    im2col,
)


def numerical_input_grad(layer, x, dout, eps=1e-6):
    """Central-difference gradient of sum(forward(x) * dout) w.r.t. x."""
    grad = np.zeros_like(x)
    flat_x = x.ravel()
    flat_g = grad.ravel()
    for i in range(flat_x.size):
        orig = flat_x[i]
        flat_x[i] = orig + eps
        up = float((layer.forward(x, training=False) * dout).sum())
        flat_x[i] = orig - eps
        down = float((layer.forward(x, training=False) * dout).sum())
        flat_x[i] = orig
        flat_g[i] = (up - down) / (2 * eps)
    return grad


def numerical_param_grad(layer, param, x, dout, eps=1e-6):
    grad = np.zeros_like(param)
    flat_p = param.ravel()
    flat_g = grad.ravel()
    for i in range(flat_p.size):
        orig = flat_p[i]
        flat_p[i] = orig + eps
        up = float((layer.forward(x, training=False) * dout).sum())
        flat_p[i] = orig - eps
        down = float((layer.forward(x, training=False) * dout).sum())
        flat_p[i] = orig
        flat_g[i] = (up - down) / (2 * eps)
    return grad


class TestDense:
    def test_forward_shape(self, rng):
        layer = Dense(8, 5, rng)
        assert layer.forward(rng.normal(size=(3, 8))).shape == (3, 5)

    def test_forward_values(self, rng):
        layer = Dense(2, 2, rng)
        layer.weight[...] = np.array([[1.0, 0.0], [0.0, 2.0]])
        layer.bias[...] = np.array([0.5, -0.5])
        out = layer.forward(np.array([[1.0, 1.0]]))
        np.testing.assert_allclose(out, [[1.5, 1.5]])

    def test_backward_input_gradient(self, rng):
        layer = Dense(6, 4, rng)
        x = rng.normal(size=(3, 6))
        dout = rng.normal(size=(3, 4))
        layer.forward(x, training=True)
        dx = layer.backward(dout)
        np.testing.assert_allclose(dx, numerical_input_grad(layer, x, dout), atol=1e-5)

    def test_backward_weight_gradient(self, rng):
        layer = Dense(5, 3, rng)
        x = rng.normal(size=(4, 5))
        dout = rng.normal(size=(4, 3))
        layer.forward(x, training=True)
        layer.backward(dout)
        expected = numerical_param_grad(layer, layer.weight, x, dout)
        np.testing.assert_allclose(layer.grad_weight, expected, atol=1e-5)

    def test_backward_bias_gradient(self, rng):
        layer = Dense(5, 3, rng)
        x = rng.normal(size=(4, 5))
        dout = rng.normal(size=(4, 3))
        layer.forward(x, training=True)
        layer.backward(dout)
        expected = numerical_param_grad(layer, layer.bias, x, dout)
        np.testing.assert_allclose(layer.grad_bias, expected, atol=1e-5)

    def test_backward_before_forward_raises(self, rng):
        with pytest.raises(RuntimeError):
            Dense(3, 3, rng).backward(np.zeros((1, 3)))

    def test_wrong_input_shape_raises(self, rng):
        with pytest.raises(ValueError):
            Dense(3, 3, rng).forward(np.zeros((2, 4)))

    def test_invalid_sizes_raise(self, rng):
        with pytest.raises(ValueError):
            Dense(0, 3, rng)

    def test_num_params(self, rng):
        assert Dense(4, 3, rng).num_params == 4 * 3 + 3

    def test_grad_buffer_identity_stable(self, rng):
        """Sequential relies on grads() references staying valid."""
        layer = Dense(3, 2, rng)
        ref = layer.grads()[0]
        x = rng.normal(size=(2, 3))
        layer.forward(x, training=True)
        layer.backward(rng.normal(size=(2, 2)))
        assert layer.grads()[0] is ref


class TestConv2d:
    def test_forward_shape_same_padding(self, rng):
        layer = Conv2d(2, 4, kernel_size=3, rng=rng, padding=1)
        assert layer.forward(rng.normal(size=(2, 2, 8, 8))).shape == (2, 4, 8, 8)

    def test_forward_shape_valid(self, rng):
        layer = Conv2d(1, 3, kernel_size=3, rng=rng)
        assert layer.forward(rng.normal(size=(1, 1, 7, 7))).shape == (1, 3, 5, 5)

    def test_forward_stride(self, rng):
        layer = Conv2d(1, 2, kernel_size=3, rng=rng, stride=2, padding=1)
        assert layer.forward(rng.normal(size=(1, 1, 8, 8))).shape == (1, 2, 4, 4)

    def test_matches_direct_convolution(self, rng):
        """Cross-check im2col conv against a naive loop implementation."""
        layer = Conv2d(2, 3, kernel_size=3, rng=rng, padding=0)
        x = rng.normal(size=(1, 2, 5, 5))
        out = layer.forward(x, training=False)
        naive = np.zeros_like(out)
        for oc in range(3):
            for i in range(3):
                for j in range(3):
                    acc = np.zeros((3, 3))
                    for ic in range(2):
                        patch = x[0, ic, i : i + 3, j : j + 3]
                        acc += (patch * layer.weight[oc, ic]).sum()
                    naive[0, oc, i, j] = acc[0, 0] + layer.bias[oc]
        np.testing.assert_allclose(out, naive, atol=1e-10)

    def test_backward_input_gradient(self, rng):
        layer = Conv2d(2, 3, kernel_size=3, rng=rng, padding=1)
        x = rng.normal(size=(2, 2, 5, 5))
        dout = rng.normal(size=(2, 3, 5, 5))
        layer.forward(x, training=True)
        dx = layer.backward(dout)
        np.testing.assert_allclose(dx, numerical_input_grad(layer, x, dout), atol=1e-5)

    def test_backward_weight_gradient(self, rng):
        layer = Conv2d(1, 2, kernel_size=3, rng=rng, padding=1)
        x = rng.normal(size=(2, 1, 4, 4))
        dout = rng.normal(size=(2, 2, 4, 4))
        layer.forward(x, training=True)
        layer.backward(dout)
        expected = numerical_param_grad(layer, layer.weight, x, dout)
        np.testing.assert_allclose(layer.grad_weight, expected, atol=1e-5)

    def test_backward_bias_gradient(self, rng):
        layer = Conv2d(1, 2, kernel_size=3, rng=rng, padding=1)
        x = rng.normal(size=(2, 1, 4, 4))
        dout = rng.normal(size=(2, 2, 4, 4))
        layer.forward(x, training=True)
        layer.backward(dout)
        expected = numerical_param_grad(layer, layer.bias, x, dout)
        np.testing.assert_allclose(layer.grad_bias, expected, atol=1e-5)

    def test_wrong_channels_raise(self, rng):
        layer = Conv2d(2, 3, kernel_size=3, rng=rng)
        with pytest.raises(ValueError):
            layer.forward(np.zeros((1, 1, 5, 5)))

    def test_kernel_too_large_raises(self, rng):
        layer = Conv2d(1, 1, kernel_size=9, rng=rng)
        with pytest.raises(ValueError):
            layer.forward(np.zeros((1, 1, 5, 5)))


class TestIm2col:
    def test_round_trip_adjoint(self, rng):
        """<im2col(x), c> == <x, col2im(c)> — adjointness."""
        x = rng.normal(size=(2, 3, 6, 6))
        col, oh, ow = im2col(x, 3, 3, 1, 1)
        c = rng.normal(size=col.shape)
        lhs = float((col * c).sum())
        back = col2im(c, x.shape, 3, 3, 1, 1)
        rhs = float((x * back).sum())
        assert lhs == pytest.approx(rhs, rel=1e-10)

    def test_output_size(self, rng):
        col, oh, ow = im2col(rng.normal(size=(2, 1, 5, 5)), 3, 3, 1, 0)
        assert (oh, ow) == (3, 3)
        assert col.shape == (2 * 9, 9)


class TestMaxPool2d:
    def test_forward(self):
        x = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
        out = MaxPool2d(2).forward(x)
        np.testing.assert_array_equal(out[0, 0], [[5, 7], [13, 15]])

    def test_backward_routes_to_max(self, rng):
        layer = MaxPool2d(2)
        x = rng.normal(size=(2, 3, 4, 4))
        layer.forward(x, training=True)
        dout = rng.normal(size=(2, 3, 2, 2))
        dx = layer.backward(dout)
        assert dx.shape == x.shape
        # Gradient mass is conserved per pooling window.
        np.testing.assert_allclose(
            dx.reshape(2, 3, 2, 2, 2, 2).sum(axis=(3, 5)), dout, atol=1e-12
        )

    def test_indivisible_raises(self):
        with pytest.raises(ValueError):
            MaxPool2d(2).forward(np.zeros((1, 1, 5, 5)))

    def test_tie_splits_gradient(self):
        x = np.ones((1, 1, 2, 2))
        layer = MaxPool2d(2)
        layer.forward(x, training=True)
        dx = layer.backward(np.array([[[[4.0]]]]))
        np.testing.assert_allclose(dx, np.ones((1, 1, 2, 2)))


class TestActivations:
    def test_relu_forward(self):
        out = ReLU().forward(np.array([-1.0, 0.0, 2.0]))
        np.testing.assert_array_equal(out, [0.0, 0.0, 2.0])

    def test_relu_backward(self, rng):
        layer = ReLU()
        x = rng.normal(size=(4, 5))
        layer.forward(x, training=True)
        dout = rng.normal(size=(4, 5))
        dx = layer.backward(dout)
        np.testing.assert_array_equal(dx, dout * (x > 0))

    def test_tanh_backward_matches_numeric(self, rng):
        layer = Tanh()
        x = rng.normal(size=(3, 4))
        dout = rng.normal(size=(3, 4))
        layer.forward(x, training=True)
        dx = layer.backward(dout)
        np.testing.assert_allclose(dx, numerical_input_grad(layer, x, dout), atol=1e-6)

    def test_backward_without_forward_raises(self):
        with pytest.raises(RuntimeError):
            ReLU().backward(np.zeros(3))
        with pytest.raises(RuntimeError):
            Tanh().backward(np.zeros(3))


class TestFlatten:
    def test_round_trip(self, rng):
        layer = Flatten()
        x = rng.normal(size=(2, 3, 4, 5))
        out = layer.forward(x, training=True)
        assert out.shape == (2, 60)
        dx = layer.backward(out)
        np.testing.assert_array_equal(dx, x)


class TestDropout:
    def test_inference_is_identity(self, rng):
        layer = Dropout(0.5, rng)
        x = rng.normal(size=(4, 6))
        np.testing.assert_array_equal(layer.forward(x, training=False), x)

    def test_training_zeroes_some(self, rng):
        layer = Dropout(0.5, rng)
        x = np.ones((10, 100))
        out = layer.forward(x, training=True)
        zero_fraction = float((out == 0).mean())
        assert 0.3 < zero_fraction < 0.7

    def test_expectation_preserved(self, rng):
        layer = Dropout(0.3, rng)
        x = np.ones((50, 200))
        out = layer.forward(x, training=True)
        assert out.mean() == pytest.approx(1.0, abs=0.05)

    def test_invalid_rate(self, rng):
        with pytest.raises(ValueError):
            Dropout(1.0, rng)
        with pytest.raises(ValueError):
            Dropout(-0.1, rng)

    def test_backward_uses_same_mask(self, rng):
        layer = Dropout(0.5, rng)
        x = np.ones((5, 8))
        out = layer.forward(x, training=True)
        dx = layer.backward(np.ones_like(x))
        np.testing.assert_array_equal(dx, out)
