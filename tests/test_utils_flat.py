"""Tests for repro.utils.flat — flat-vector helpers, incl. property tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.flat import (
    flatten_arrays,
    shapes_of,
    total_size,
    unflatten_vector,
    vector_cosine,
    vector_l2,
)


class TestFlattenUnflatten:
    def test_round_trip(self, rng):
        arrays = [rng.normal(size=s) for s in [(3, 4), (5,), (2, 2, 2)]]
        flat = flatten_arrays(arrays)
        back = unflatten_vector(flat, shapes_of(arrays))
        for a, b in zip(arrays, back):
            np.testing.assert_array_equal(a, b)

    def test_empty_list(self):
        assert flatten_arrays([]).shape == (0,)

    def test_flatten_copies(self, rng):
        a = rng.normal(size=(3,))
        flat = flatten_arrays([a])
        flat[0] = 999.0
        assert a[0] != 999.0

    def test_unflatten_copies(self, rng):
        flat = rng.normal(size=6)
        arrays = unflatten_vector(flat, [(2, 3)])
        arrays[0][0, 0] = 123.0
        assert flat[0] != 123.0

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="require"):
            unflatten_vector(np.zeros(5), [(2, 3)])

    def test_order_preserved(self):
        flat = flatten_arrays([np.array([1.0, 2.0]), np.array([[3.0], [4.0]])])
        np.testing.assert_array_equal(flat, [1.0, 2.0, 3.0, 4.0])

    @given(
        st.lists(
            st.tuples(st.integers(1, 4), st.integers(1, 4)), min_size=1, max_size=5
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_round_trip_property(self, shapes):
        rng = np.random.default_rng(0)
        arrays = [rng.normal(size=s) for s in shapes]
        back = unflatten_vector(flatten_arrays(arrays), shapes)
        assert all(np.array_equal(a, b) for a, b in zip(arrays, back))


class TestTotalSize:
    def test_basic(self):
        assert total_size([(2, 3), (4,)]) == 10

    def test_empty(self):
        assert total_size([]) == 0


class TestVectorMetrics:
    def test_l2(self):
        assert vector_l2(np.array([3.0, 4.0])) == pytest.approx(5.0)

    def test_cosine_identical(self, rng):
        v = rng.normal(size=10)
        assert vector_cosine(v, v) == pytest.approx(1.0)

    def test_cosine_opposite(self, rng):
        v = rng.normal(size=10)
        assert vector_cosine(v, -v) == pytest.approx(-1.0)

    def test_cosine_orthogonal(self):
        assert vector_cosine(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == pytest.approx(0.0)

    def test_cosine_zero_vector(self):
        assert vector_cosine(np.zeros(3), np.ones(3)) == 0.0

    def test_cosine_shape_mismatch(self):
        with pytest.raises(ValueError):
            vector_cosine(np.zeros(3), np.zeros(4))

    @given(st.integers(2, 30))
    @settings(max_examples=20, deadline=None)
    def test_cosine_bounded(self, dim):
        rng = np.random.default_rng(dim)
        a, b = rng.normal(size=dim), rng.normal(size=dim)
        assert -1.0 - 1e-9 <= vector_cosine(a, b) <= 1.0 + 1e-9
