"""Tests for the V2I communication model."""

import pytest

from repro.iov import V2iLink, payload_bytes, round_time


class TestPayloadBytes:
    def test_float32(self):
        assert payload_bytes(1000, "float32") == 4000

    def test_float16(self):
        assert payload_bytes(1000, "float16") == 2000

    def test_sign2bit(self):
        assert payload_bytes(1000, "sign2bit") == 250

    def test_rounds_up_to_whole_bytes(self):
        assert payload_bytes(3, "sign2bit") == 1

    def test_zero_elements(self):
        assert payload_bytes(0) == 0

    def test_unknown_representation(self):
        with pytest.raises(ValueError):
            payload_bytes(10, "zip")

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            payload_bytes(-1)


class TestV2iLink:
    def test_validation(self):
        with pytest.raises(ValueError):
            V2iLink(uplink_bps=0)
        with pytest.raises(ValueError):
            V2iLink(rtt_seconds=-1)


class TestRoundTime:
    def test_sign_uplink_much_faster(self):
        """The codec's 16x byte reduction shows up as round time."""
        link = V2iLink(uplink_bps=10e6, downlink_bps=50e6, rtt_seconds=0.0)
        full = round_time(link, 20, 52138, uplink_representation="float32")
        sign = round_time(link, 20, 52138, uplink_representation="sign2bit")
        assert sign < full / 8

    def test_more_participants_slower(self):
        link = V2iLink()
        assert round_time(link, 50, 10000) > round_time(link, 5, 10000)

    def test_rtt_floor(self):
        link = V2iLink(rtt_seconds=0.5)
        assert round_time(link, 1, 1) >= 0.5

    def test_invalid_participants(self):
        with pytest.raises(ValueError):
            round_time(V2iLink(), 0, 100)

    def test_downlink_broadcast_independent_of_n(self):
        """Downlink cost does not scale with participants."""
        link = V2iLink(uplink_bps=1e12, downlink_bps=50e6, rtt_seconds=0.0)
        t5 = round_time(link, 5, 100000)
        t50 = round_time(link, 50, 100000)
        assert t50 == pytest.approx(t5, rel=1e-2)
