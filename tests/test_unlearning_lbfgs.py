"""Tests for the compact-form L-BFGS (Algorithm 2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.unlearning import LbfgsBuffer, lbfgs_hessian_dense


def spd_matrix(rng, d):
    a = rng.normal(size=(d, d))
    return a @ a.T / d + np.eye(d)


class TestBufferBasics:
    def test_empty_hvp_is_zero(self, rng):
        buf = LbfgsBuffer(buffer_size=2)
        v = rng.normal(size=7)
        np.testing.assert_array_equal(buf.hvp(v), np.zeros(7))

    def test_add_pair_accepts_curved(self, rng):
        buf = LbfgsBuffer()
        s = rng.normal(size=5)
        assert buf.add_pair(s, s)  # y = s has positive curvature
        assert len(buf) == 1

    def test_rejects_zero_step(self):
        buf = LbfgsBuffer()
        assert not buf.add_pair(np.zeros(4), np.ones(4))
        assert buf.is_empty

    def test_rejects_negative_curvature(self, rng):
        buf = LbfgsBuffer()
        s = rng.normal(size=5)
        assert not buf.add_pair(s, -s)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            LbfgsBuffer().add_pair(np.zeros(3), np.zeros(4))

    def test_buffer_evicts_oldest(self, rng):
        buf = LbfgsBuffer(buffer_size=2)
        for _ in range(5):
            s = rng.normal(size=4)
            buf.add_pair(s, s)
        assert len(buf) == 2

    def test_clear(self, rng):
        buf = LbfgsBuffer()
        s = rng.normal(size=3)
        buf.add_pair(s, s)
        buf.clear()
        assert buf.is_empty

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            LbfgsBuffer(buffer_size=0)
        with pytest.raises(ValueError):
            LbfgsBuffer(sigma_floor=0.0)

    def test_hvp_wrong_dim_raises(self, rng):
        buf = LbfgsBuffer()
        s = rng.normal(size=4)
        buf.add_pair(s, s)
        with pytest.raises(ValueError):
            buf.hvp(np.zeros(5))


class TestQuadraticApproximation:
    def test_secant_on_latest_pair(self, rng):
        """BFGS satisfies B s_k = y_k for the most recent pair."""
        d = 12
        a = spd_matrix(rng, d)
        buf = LbfgsBuffer(buffer_size=4)
        pairs = []
        for _ in range(4):
            s = rng.normal(size=d)
            pairs.append((s, a @ s))
            buf.add_pair(s, a @ s)
        s_last, y_last = pairs[-1]
        np.testing.assert_allclose(buf.hvp(s_last), y_last, rtol=1e-8)

    def test_approximates_spd_hessian(self, rng):
        d = 15
        a = spd_matrix(rng, d)
        buf = LbfgsBuffer(buffer_size=8)
        for _ in range(8):
            s = rng.normal(size=d)
            buf.add_pair(s, a @ s)
        v = rng.normal(size=d)
        rel_err = np.linalg.norm(buf.hvp(v) - a @ v) / np.linalg.norm(a @ v)
        assert rel_err < 0.6  # quasi-Newton quality, not exactness

    def test_hvp_linear(self, rng):
        d = 8
        a = spd_matrix(rng, d)
        buf = LbfgsBuffer(buffer_size=3)
        for _ in range(3):
            s = rng.normal(size=d)
            buf.add_pair(s, a @ s)
        u, v = rng.normal(size=d), rng.normal(size=d)
        np.testing.assert_allclose(
            buf.hvp(2 * u + 3 * v), 2 * buf.hvp(u) + 3 * buf.hvp(v), rtol=1e-8
        )


class TestDenseAlgorithm2:
    def test_symmetric(self, rng):
        d, s = 10, 3
        a = spd_matrix(rng, d)
        dw = rng.normal(size=(d, s))
        h = lbfgs_hessian_dense(dw, a @ dw)
        np.testing.assert_allclose(h, h.T, atol=1e-10)

    def test_matches_buffer_hvp(self, rng):
        """The matrix form of Algorithm 2 and the product form agree."""
        d, s = 9, 3
        a = spd_matrix(rng, d)
        dw = rng.normal(size=(d, s))
        dg = a @ dw
        h = lbfgs_hessian_dense(dw, dg)
        buf = LbfgsBuffer(buffer_size=s)
        for j in range(s):
            buf.add_pair(dw[:, j], dg[:, j])
        v = rng.normal(size=d)
        np.testing.assert_allclose(h @ v, buf.hvp(v), rtol=1e-7, atol=1e-9)

    def test_exact_for_sigma_scaled_identity(self, rng):
        """If the true Hessian is σI the approximation is exact."""
        d, s = 6, 2
        sigma = 2.5
        dw = rng.normal(size=(d, s))
        h = lbfgs_hessian_dense(dw, sigma * dw)
        np.testing.assert_allclose(h, sigma * np.eye(d), atol=1e-8)

    def test_shape_validation(self, rng):
        with pytest.raises(ValueError):
            lbfgs_hessian_dense(rng.normal(size=(4, 2)), rng.normal(size=(4, 3)))

    def test_dense_size_guard(self):
        with pytest.raises(ValueError):
            LbfgsBuffer().dense(5000)


class TestRobustness:
    @given(st.integers(1, 5))
    @settings(max_examples=20, deadline=None)
    def test_hvp_always_finite(self, num_pairs):
        """Even with badly-scaled sign-unit pairs the product is finite."""
        rng = np.random.default_rng(num_pairs)
        buf = LbfgsBuffer(buffer_size=num_pairs)
        for _ in range(num_pairs):
            s = rng.normal(size=20) * 1e-4  # tiny steps
            y = rng.choice([-2.0, 0.0, 2.0], size=20)  # sign-difference units
            buf.add_pair(s, y)
        out = buf.hvp(rng.normal(size=20))
        assert np.isfinite(out).all()

    def test_duplicate_pairs_no_crash(self, rng):
        """Identical pairs make the middle matrix singular; the lstsq
        fallback must keep the product finite."""
        buf = LbfgsBuffer(buffer_size=3)
        s = rng.normal(size=10)
        for _ in range(3):
            buf.add_pair(s, s * 2)
        assert np.isfinite(buf.hvp(rng.normal(size=10))).all()
