"""Edge-case and failure-injection tests across the unlearning pipeline."""

import numpy as np
import pytest

from repro.datasets import make_synthetic_mnist, partition_iid, train_test_split
from repro.fl import (
    FederatedSimulation,
    ParticipationSchedule,
    VehicleClient,
    with_sign_store,
)
from repro.nn import mlp
from repro.storage import FullGradientStore
from repro.unlearning import SignRecoveryUnlearner, backtrack
from repro.utils.rng import SeedSequenceTree


def make_run(seed=91, rounds=25, joins=None, leaves=None, clients=5):
    tree = SeedSequenceTree(seed)
    data = make_synthetic_mnist(600, tree.rng("data"), image_size=12)
    train, test = train_test_split(data, 0.25, tree.rng("split"))
    shards = partition_iid(train, clients, tree.rng("part"))
    vehicle_clients = [
        VehicleClient(i, shards[i], tree.rng(f"c{i}"), batch_size=32)
        for i in range(clients)
    ]
    model = mlp(tree.rng("model"), 144, 10, hidden=16)
    schedule = ParticipationSchedule.with_events(
        range(clients), joins=joins or {}, leaves=leaves or {}
    )
    sim = FederatedSimulation(
        model, vehicle_clients, learning_rate=2e-3, schedule=schedule,
        gradient_store=FullGradientStore(),
    )
    return sim.run(rounds), model, test


class TestForgetFoundingClient:
    """Forgetting a client that joined at round 0 degenerates to a full
    reset — backtrack returns w_0 and recovery replays everything."""

    def test_backtrack_to_initialization(self):
        record, model, _ = make_run()
        params, f = backtrack(record, [0])
        assert f == 0
        np.testing.assert_array_equal(params, record.params_at(0))

    def test_recovery_from_round_zero(self):
        record, model, _ = make_run()
        sign_record = with_sign_store(record)
        result = SignRecoveryUnlearner(clip_threshold=5.0).unlearn(
            sign_record, [0], model
        )
        assert result.stats["forget_round"] == 0
        assert result.rounds_replayed == record.num_rounds
        assert np.isfinite(result.params).all()


class TestForgetDepartedClient:
    """A client that already LEFT FL can still be forgotten — its
    stored updates span [join, leave) only."""

    def test_forget_after_leave(self):
        record, model, _ = make_run(joins={3: 2}, leaves={3: 12}, rounds=25)
        assert record.ledger.leave_round(3) == 12
        sign_record = with_sign_store(record)
        result = SignRecoveryUnlearner(clip_threshold=5.0).unlearn(
            sign_record, [3], model
        )
        assert result.stats["forget_round"] == 2
        assert np.isfinite(result.params).all()

    def test_forget_multiple_disjoint_clients(self):
        record, model, _ = make_run(joins={2: 3, 4: 8}, rounds=25)
        sign_record = with_sign_store(record)
        result = SignRecoveryUnlearner(clip_threshold=5.0).unlearn(
            sign_record, [2, 4], model
        )
        # Backtracks to the EARLIEST join among the forgotten.
        assert result.stats["forget_round"] == 3


class TestCorruptRecord:
    def test_missing_checkpoint_raises_cleanly(self):
        record, model, _ = make_run(joins={4: 2})
        record.checkpoints.prune(keep=[0, 1, record.num_rounds])
        sign_record = with_sign_store(record)
        with pytest.raises(KeyError):
            SignRecoveryUnlearner().unlearn(sign_record, [4], model)

    def test_backtrack_missing_f_checkpoint(self):
        record, model, _ = make_run(joins={4: 2})
        record.checkpoints.prune(keep=[0, record.num_rounds])
        with pytest.raises(KeyError):
            backtrack(record, [4])


class TestSingleRemainingClient:
    def test_recovery_with_one_survivor(self):
        record, model, _ = make_run(clients=3, joins={1: 2, 2: 2})
        sign_record = with_sign_store(record)
        result = SignRecoveryUnlearner(clip_threshold=5.0).unlearn(
            sign_record, [1, 2], model
        )
        assert np.isfinite(result.params).all()


class TestVeryLateJoin:
    def test_forget_client_joining_last_round(self):
        record, model, _ = make_run(joins={4: 24}, rounds=25)
        sign_record = with_sign_store(record)
        result = SignRecoveryUnlearner().unlearn(sign_record, [4], model)
        # Only one round to replay; model ~ w_T.
        assert result.rounds_replayed == 1
        assert result.stats["forget_round"] == 24

    def test_backtracking_late_join_keeps_training(self):
        record, model, test = make_run(joins={4: 24}, rounds=25)
        params, f = backtrack(record, [4])
        # The unlearned model IS the round-24 model: nearly all
        # training outcomes are preserved (the paper's Challenge II).
        np.testing.assert_array_equal(params, record.params_at(24))
