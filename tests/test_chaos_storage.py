"""Chaos scenarios for the on-disk sign-store layouts.

A SIGKILL can land anywhere inside a spill or compaction.  The tiered
store's durability contract is that the tiny manifest swap is the only
commit point: whatever instant the process dies, reopening the
directory must yield a store byte-identical to either the last durable
state or the fully-committed new state — never a torn mix.  Hot rows
that were never spilled are the one permissible loss (they were never
durable); rounds that reached a shard can never be lost or corrupted.
These tests inject a crash at every declared
:data:`~repro.storage.tiered.CRASH_POINTS` hook during spill and
compaction (and at the manifest swap of the mmap store's ``compact``)
and assert exactly that.

Seeds come from the ``CHAOS_SEEDS`` environment variable, same harness
as :mod:`tests.test_chaos` — ``make chaos`` sweeps several.
"""

import os

import numpy as np
import pytest

from repro.storage import (
    MmapSignGradientStore,
    SignGradientStore,
    TieredSignGradientStore,
)
from repro.storage.tiered import CRASH_POINTS

pytestmark = pytest.mark.chaos

CHAOS_SEEDS = [int(s) for s in os.environ.get("CHAOS_SEEDS", "7").split(",")]

DELTA = 1e-6
DIM = 57


class _InjectedCrash(BaseException):
    """Raised by the crash hook; BaseException so no except Exception
    inside the store can swallow the simulated SIGKILL."""


def _cohorts(rng, rounds):
    return {
        t: {int(c): rng.normal(size=DIM) * 1e-3 for c in range(t % 3 + 1, 6)}
        for t in rounds
    }


def _snapshot(store):
    """Full byte-level view: {(round, client): payload bytes + length}."""
    return {
        (int(t), int(cid)): (bytes(np.asarray(packed)), int(length))
        for (t, cid), (packed, length) in store.items()
    }


def _crash_hook(point):
    def crash(p):
        if p == point:
            raise _InjectedCrash(p)

    return crash


@pytest.mark.parametrize("seed", CHAOS_SEEDS)
@pytest.mark.parametrize("point", CRASH_POINTS)
def test_crash_during_spill_keeps_durable_or_new_state(seed, point, tmp_path):
    rng = np.random.default_rng(seed)
    directory = str(tmp_path / "tiered")
    store = TieredSignGradientStore(directory, delta=DELTA)

    # rounds 0-2 reach disk and become the durable baseline
    for t, cohort in _cohorts(rng, range(3)).items():
        store.put_round(t, cohort)
    store.flush()
    durable = _snapshot(store)

    # rounds 3-4 are hot-only when the crash lands mid-flush
    for t, cohort in _cohorts(rng, range(3, 5)).items():
        store.put_round(t, cohort)
    full = _snapshot(store)
    assert set(full) > set(durable)

    store._crash_hook = _crash_hook(point)
    with pytest.raises(_InjectedCrash):
        store.flush()
    store._crash_hook = None

    # the in-process store never adopts a torn write: it still serves
    # every round, bit-for-bit
    assert _snapshot(store) == full
    assert store.nbytes() == store.recount_nbytes()

    # a restart sees exactly one of the two valid states — never a mix
    reopened = TieredSignGradientStore.open(directory)
    observed = _snapshot(reopened)
    assert observed in (durable, full), sorted(observed)
    if point == "after-manifest-replace":
        # past the commit point the flush IS durable
        assert observed == full
    assert reopened.nbytes() == reopened.recount_nbytes()
    for t in reopened.rounds():
        got = reopened.get_round(t)
        for cid in reopened.clients_at(t):
            np.testing.assert_array_equal(got[cid], reopened.get(t, cid))


@pytest.mark.parametrize("seed", CHAOS_SEEDS)
@pytest.mark.parametrize("point", CRASH_POINTS)
def test_crash_during_compaction_never_loses_a_round(seed, point, tmp_path):
    rng = np.random.default_rng(seed)
    reference = SignGradientStore(delta=DELTA)
    directory = str(tmp_path / "tiered")
    store = TieredSignGradientStore(directory, delta=DELTA, hot_budget_bytes=64)
    for t, cohort in _cohorts(rng, range(5)).items():
        reference.put_round(t, cohort)
        store.put_round(t, cohort)
    store.flush()
    reference.drop_client(2)
    store.drop_client(2)
    pre = _snapshot(reference)  # compaction reclaims bytes, not records
    assert _snapshot(store) == pre
    disk_before = store.disk_bytes()

    store._crash_hook = _crash_hook(point)
    with pytest.raises(_InjectedCrash):
        store.compact(cold_after=1)
    store._crash_hook = None

    # compaction operates on durable rounds only: no crash point may
    # lose or corrupt a single record, in-process or across a restart
    assert _snapshot(store) == pre
    assert store.nbytes() == store.recount_nbytes()
    reopened = TieredSignGradientStore.open(directory)
    assert _snapshot(reopened) == pre
    assert reopened.nbytes() == reopened.recount_nbytes()

    # the aborted attempt left no poison: a clean retry completes,
    # demotes old rounds, and the dropped client's bytes are gone
    reopened.compact(cold_after=1)
    assert _snapshot(reopened) == pre
    assert reopened.disk_bytes() < disk_before
    assert reopened.tier_rounds()["cold"] > 0


@pytest.mark.parametrize("seed", CHAOS_SEEDS)
def test_crash_between_tmp_write_and_rename_mmap_compact(seed, tmp_path, monkeypatch):
    rng = np.random.default_rng(seed)
    reference = SignGradientStore(delta=DELTA)
    for t, cohort in _cohorts(rng, range(5)).items():
        reference.put_round(t, cohort)
    directory = str(tmp_path / "mmap")
    store = MmapSignGradientStore.from_store(reference, directory)
    reference.drop_client(3)
    store.drop_client(3)
    pre = _snapshot(reference)

    real_replace = os.replace

    def crash_on_manifest(src, dst):
        if os.path.basename(dst) == "manifest.json":
            raise _InjectedCrash(dst)
        return real_replace(src, dst)

    monkeypatch.setattr(os, "replace", crash_on_manifest)
    with pytest.raises(_InjectedCrash):
        store.compact()
    monkeypatch.undo()

    # manifest swap never happened → reopening serves the old shard set
    reopened = MmapSignGradientStore.open(directory)
    assert _snapshot(reopened) == pre
    assert reopened.nbytes() == reopened.recount_nbytes()

    # retry on the reopened store completes and reclaims bytes
    disk_before = reopened.disk_bytes()
    stats = reopened.compact()
    assert stats["removed_rows"] > 0
    assert reopened.disk_bytes() < disk_before
    assert _snapshot(reopened) == pre


@pytest.mark.parametrize("seed", CHAOS_SEEDS)
def test_mmap_compact_orphans_swept_on_reopen(seed, tmp_path, monkeypatch):
    """A crash between compact()'s shard renames and its manifest swap
    leaves new-generation shards no manifest references; open() must
    sweep them (and the manifest tmp) instead of leaking disk."""
    rng = np.random.default_rng(seed)
    reference = SignGradientStore(delta=DELTA)
    for t, cohort in _cohorts(rng, range(4)).items():
        reference.put_round(t, cohort)
    directory = str(tmp_path / "mmap")
    store = MmapSignGradientStore.from_store(reference, directory)
    old_names = set(store._shard_names)
    reference.drop_client(2)
    store.drop_client(2)
    pre = _snapshot(reference)

    real_replace = os.replace

    def crash_on_manifest(src, dst):
        if os.path.basename(dst) == "manifest.json":
            raise _InjectedCrash(dst)
        return real_replace(src, dst)

    monkeypatch.setattr(os, "replace", crash_on_manifest)
    with pytest.raises(_InjectedCrash):
        store.compact()
    monkeypatch.undo()

    orphans = [
        f
        for f in os.listdir(directory)
        if f.startswith("shard_") and f not in old_names
    ]
    assert orphans, "crash point should have left unreferenced shards behind"
    # the aborted manifest tmp was cleaned up on the way out
    assert not [f for f in os.listdir(directory) if f.startswith(".manifest-")]

    reopened = MmapSignGradientStore.open(directory)
    assert _snapshot(reopened) == pre
    leftover = [
        f
        for f in os.listdir(directory)
        if f.startswith("shard_") and f not in set(reopened._shard_names)
    ]
    assert leftover == [], "open() must sweep unreferenced shard files"


@pytest.mark.parametrize("seed", CHAOS_SEEDS)
def test_crash_garbage_is_swept_on_reopen(seed, tmp_path):
    """Unreferenced shard/tmp files from a torn spill are deleted by open()."""
    rng = np.random.default_rng(seed)
    directory = str(tmp_path / "tiered")
    store = TieredSignGradientStore(directory, delta=DELTA)
    for t, cohort in _cohorts(rng, range(3)).items():
        store.put_round(t, cohort)
    store.flush()
    durable = _snapshot(store)
    referenced = list(store._shard_names)

    for t, cohort in _cohorts(rng, range(3, 5)).items():
        store.put_round(t, cohort)
    store._crash_hook = _crash_hook("after-shard-write")
    with pytest.raises(_InjectedCrash):
        store.flush()

    orphans = [
        f
        for f in os.listdir(directory)
        if f.startswith("shard_") and not f.endswith(".idx.npz")
        and f not in referenced
    ]
    assert orphans, "crash point should have left unreferenced files behind"

    reopened = TieredSignGradientStore.open(directory)
    assert _snapshot(reopened) == durable
    leftover = [
        f
        for f in os.listdir(directory)
        if f.startswith("shard_") and not f.endswith(".idx.npz")
        and f not in reopened._shard_names
    ]
    assert leftover == []
