"""Tests for backtracking, the paper's recovery scheme, and all baselines.

These use the session-scoped ``small_fl`` fixture: a real 6-client FL
run where client 5 joined at round 2 (the paper's forgotten-client
shape).
"""

import numpy as np
import pytest

from repro.fl import with_sign_store
from repro.nn import accuracy
from repro.storage import SignGradientStore
from repro.unlearning import (
    ClientsRequiredError,
    FedEraserUnlearner,
    FedRecoverUnlearner,
    FedRecoveryUnlearner,
    RetrainUnlearner,
    SignRecoveryUnlearner,
    backtrack,
    remaining_ids,
    resolve_forget_round,
)


def acc(small_fl, params):
    model = small_fl["model"]
    model.set_flat_params(params)
    test = small_fl["test"]
    return accuracy(model.predict(test.x), test.y)


class TestResolveForgetRound:
    def test_single_client(self, small_fl):
        assert resolve_forget_round(small_fl["record"], [5]) == 2

    def test_multiple_clients_earliest_join(self, small_fl):
        assert resolve_forget_round(small_fl["record"], [0, 5]) == 0

    def test_empty_raises(self, small_fl):
        with pytest.raises(ValueError):
            resolve_forget_round(small_fl["record"], [])

    def test_unknown_raises(self, small_fl):
        with pytest.raises(ValueError):
            resolve_forget_round(small_fl["record"], [99])


class TestBacktrack:
    def test_returns_checkpoint_f(self, small_fl):
        record = small_fl["record"]
        params, f = backtrack(record, [5])
        assert f == 2
        np.testing.assert_array_equal(params, record.params_at(2))

    def test_erases_all_influence(self, small_fl):
        """w_F must be bitwise independent of the forgotten client:
        it equals the checkpoint taken before the client ever joined."""
        record = small_fl["record"]
        params, f = backtrack(record, [5])
        assert record.ledger.join_round(5) == f
        # No gradient of client 5 exists before round f.
        for t in range(f):
            assert not record.gradients.has(t, 5)

    def test_remaining_ids(self, small_fl):
        assert remaining_ids(small_fl["record"], [5]) == [0, 1, 2, 3, 4]


class TestSignRecovery:
    @pytest.fixture(scope="class")
    def result(self, small_fl):
        sign_record = with_sign_store(small_fl["record"], delta=1e-6)
        unlearner = SignRecoveryUnlearner(clip_threshold=5.0)
        return unlearner.unlearn(sign_record, [5], small_fl["model"])

    def test_zero_client_calls(self, result):
        """Headline claim: recovery is server-only."""
        assert result.client_gradient_calls == 0

    def test_recovers_accuracy(self, small_fl, result):
        trained = acc(small_fl, small_fl["record"].final_params())
        backtracked = acc(small_fl, backtrack(small_fl["record"], [5])[0])
        recovered = acc(small_fl, result.params)
        assert recovered > backtracked + 0.1
        assert recovered > trained - 0.15

    def test_replays_correct_rounds(self, small_fl, result):
        assert result.rounds_replayed == small_fl["record"].num_rounds - 2

    def test_stats_populated(self, result):
        assert result.stats["forget_round"] == 2
        assert result.stats["pairs_accepted"] >= 0
        assert result.stats["mean_displacement"] >= 0.0

    def test_works_without_clients_or_factory(self, small_fl):
        """Must not need what the baselines need."""
        sign_record = with_sign_store(small_fl["record"])
        result = SignRecoveryUnlearner().unlearn(
            sign_record, [5], small_fl["model"], clients=None, model_factory=None
        )
        assert np.isfinite(result.params).all()

    def test_deterministic(self, small_fl):
        sign_record = with_sign_store(small_fl["record"])
        a = SignRecoveryUnlearner().unlearn(sign_record, [5], small_fl["model"])
        b = SignRecoveryUnlearner().unlearn(sign_record, [5], small_fl["model"])
        np.testing.assert_array_equal(a.params, b.params)

    def test_round_callback_invoked(self, small_fl):
        seen = []
        sign_record = with_sign_store(small_fl["record"])
        SignRecoveryUnlearner(round_callback=lambda t, p: seen.append(t)).unlearn(
            sign_record, [5], small_fl["model"]
        )
        assert len(seen) == small_fl["record"].num_rounds - 2

    def test_forgetting_all_but_one(self, small_fl):
        sign_record = with_sign_store(small_fl["record"])
        result = SignRecoveryUnlearner().unlearn(
            sign_record, [1, 2, 3, 4, 5], small_fl["model"]
        )
        assert np.isfinite(result.params).all()

    def test_no_remaining_raises(self, small_fl):
        sign_record = with_sign_store(small_fl["record"])
        with pytest.raises(ValueError):
            SignRecoveryUnlearner().unlearn(
                sign_record, [0, 1, 2, 3, 4, 5], small_fl["model"]
            )

    def test_invalid_refresh_period(self):
        with pytest.raises(ValueError):
            SignRecoveryUnlearner(refresh_period=0)

    def test_works_on_full_store_too(self, small_fl):
        """The recovery machinery is storage-agnostic (ablation path)."""
        result = SignRecoveryUnlearner().unlearn(
            small_fl["record"], [5], small_fl["model"]
        )
        assert np.isfinite(result.params).all()


class TestRetrain:
    def test_reaches_trained_quality(self, small_fl):
        result = RetrainUnlearner().unlearn(
            small_fl["record"], [5], small_fl["model"],
            clients=small_fl["clients"], model_factory=small_fl["factory"],
        )
        trained = acc(small_fl, small_fl["record"].final_params())
        assert acc(small_fl, result.params) > trained - 0.1

    def test_counts_client_calls(self, small_fl):
        result = RetrainUnlearner(num_rounds=5).unlearn(
            small_fl["record"], [5], small_fl["model"],
            clients=small_fl["clients"], model_factory=small_fl["factory"],
        )
        assert result.client_gradient_calls == 5 * 5  # 5 rounds x 5 remaining

    def test_requires_clients(self, small_fl):
        with pytest.raises(ClientsRequiredError):
            RetrainUnlearner().unlearn(
                small_fl["record"], [5], small_fl["model"],
                model_factory=small_fl["factory"],
            )

    def test_requires_factory(self, small_fl):
        with pytest.raises(ClientsRequiredError):
            RetrainUnlearner().unlearn(
                small_fl["record"], [5], small_fl["model"],
                clients=small_fl["clients"],
            )


class TestFedRecover:
    def test_recovers(self, small_fl):
        result = FedRecoverUnlearner(correction_period=10).unlearn(
            small_fl["record"], [5], small_fl["model"],
            clients=small_fl["clients"], model_factory=small_fl["factory"],
        )
        trained = acc(small_fl, small_fl["record"].final_params())
        assert acc(small_fl, result.params) > trained - 0.2

    def test_uses_fewer_calls_than_retrain(self, small_fl):
        fr = FedRecoverUnlearner(correction_period=10).unlearn(
            small_fl["record"], [5], small_fl["model"],
            clients=small_fl["clients"], model_factory=small_fl["factory"],
        )
        rt = RetrainUnlearner().unlearn(
            small_fl["record"], [5], small_fl["model"],
            clients=small_fl["clients"], model_factory=small_fl["factory"],
        )
        assert 0 < fr.client_gradient_calls < rt.client_gradient_calls

    def test_rejects_sign_store(self, small_fl):
        """FedRecover NEEDS full gradients — the paper's storage point."""
        sign_record = with_sign_store(small_fl["record"])
        with pytest.raises(TypeError):
            FedRecoverUnlearner().unlearn(
                sign_record, [5], small_fl["model"],
                clients=small_fl["clients"], model_factory=small_fl["factory"],
            )

    def test_requires_clients(self, small_fl):
        with pytest.raises(ClientsRequiredError):
            FedRecoverUnlearner().unlearn(
                small_fl["record"], [5], small_fl["model"],
                model_factory=small_fl["factory"],
            )

    def test_fails_when_client_offline(self, small_fl):
        """If a needed client left FL, FedRecover cannot run — the IoV
        failure mode motivating the paper."""
        partial = {cid: c for cid, c in small_fl["clients"].items() if cid != 0}
        with pytest.raises(ClientsRequiredError):
            FedRecoverUnlearner().unlearn(
                small_fl["record"], [5], small_fl["model"],
                clients=partial, model_factory=small_fl["factory"],
            )

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            FedRecoverUnlearner(warmup_rounds=0)
        with pytest.raises(ValueError):
            FedRecoverUnlearner(correction_period=0)
        with pytest.raises(ValueError):
            FedRecoverUnlearner(norm_clip_factor=0.0)


class TestFedRecovery:
    def test_no_client_calls(self, small_fl, rng):
        result = FedRecoveryUnlearner(noise_multiplier=1.0, rng=rng).unlearn(
            small_fl["record"], [5], small_fl["model"]
        )
        assert result.client_gradient_calls == 0
        assert result.rounds_replayed == 0

    def test_moves_model(self, small_fl, rng):
        result = FedRecoveryUnlearner(noise_multiplier=1.0, rng=rng).unlearn(
            small_fl["record"], [5], small_fl["model"]
        )
        assert not np.array_equal(result.params, small_fl["record"].final_params())

    def test_noise_free_mode(self, small_fl):
        a = FedRecoveryUnlearner(noise_multiplier=0.0).unlearn(
            small_fl["record"], [5], small_fl["model"]
        )
        b = FedRecoveryUnlearner(noise_multiplier=0.0).unlearn(
            small_fl["record"], [5], small_fl["model"]
        )
        np.testing.assert_array_equal(a.params, b.params)

    def test_more_noise_hurts_more(self, small_fl):
        rng = np.random.default_rng(0)
        small_noise = FedRecoveryUnlearner(noise_multiplier=1.0, rng=np.random.default_rng(1))
        big_noise = FedRecoveryUnlearner(noise_multiplier=200.0, rng=np.random.default_rng(1))
        a = acc(small_fl, small_noise.unlearn(small_fl["record"], [5], small_fl["model"]).params)
        b = acc(small_fl, big_noise.unlearn(small_fl["record"], [5], small_fl["model"]).params)
        assert b < a

    def test_rejects_sign_store(self, small_fl):
        sign_record = with_sign_store(small_fl["record"])
        with pytest.raises(TypeError):
            FedRecoveryUnlearner(noise_multiplier=0.0).unlearn(
                sign_record, [5], small_fl["model"]
            )

    def test_requires_rng_with_noise(self):
        with pytest.raises(ValueError):
            FedRecoveryUnlearner(noise_multiplier=1.0, rng=None)

    def test_unknown_client_raises(self, small_fl):
        with pytest.raises(ValueError):
            FedRecoveryUnlearner(noise_multiplier=0.0).unlearn(
                small_fl["record"], [99], small_fl["model"]
            )

    def test_residual_rounds_counted(self, small_fl):
        result = FedRecoveryUnlearner(noise_multiplier=0.0).unlearn(
            small_fl["record"], [5], small_fl["model"]
        )
        # Client 5 joined at round 2 and participated every round after.
        assert result.stats["residual_rounds"] == small_fl["record"].num_rounds - 2


class TestFedEraser:
    def test_recovers(self, small_fl):
        result = FedEraserUnlearner(round_interval=2).unlearn(
            small_fl["record"], [5], small_fl["model"],
            clients=small_fl["clients"], model_factory=small_fl["factory"],
        )
        backtracked = acc(small_fl, backtrack(small_fl["record"], [5])[0])
        assert acc(small_fl, result.params) > backtracked

    def test_subsampling_reduces_calls(self, small_fl):
        sparse = FedEraserUnlearner(round_interval=5).unlearn(
            small_fl["record"], [5], small_fl["model"],
            clients=small_fl["clients"], model_factory=small_fl["factory"],
        )
        dense = FedEraserUnlearner(round_interval=1).unlearn(
            small_fl["record"], [5], small_fl["model"],
            clients=small_fl["clients"], model_factory=small_fl["factory"],
        )
        assert sparse.client_gradient_calls < dense.client_gradient_calls

    def test_requires_clients(self, small_fl):
        with pytest.raises(ClientsRequiredError):
            FedEraserUnlearner().unlearn(
                small_fl["record"], [5], small_fl["model"],
                model_factory=small_fl["factory"],
            )

    def test_rejects_sign_store(self, small_fl):
        sign_record = with_sign_store(small_fl["record"])
        with pytest.raises(TypeError):
            FedEraserUnlearner().unlearn(
                sign_record, [5], small_fl["model"],
                clients=small_fl["clients"], model_factory=small_fl["factory"],
            )

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            FedEraserUnlearner(round_interval=0)


class TestStorageRequirements:
    """The method-requirements matrix from the module docstring."""

    def test_ours_works_from_sign_only(self, small_fl):
        sign_record = with_sign_store(small_fl["record"])
        assert isinstance(sign_record.gradients, SignGradientStore)
        result = SignRecoveryUnlearner().unlearn(sign_record, [5], small_fl["model"])
        assert np.isfinite(result.params).all()

    def test_sign_storage_is_much_smaller(self, small_fl):
        sign_record = with_sign_store(small_fl["record"])
        ratio = sign_record.gradients.nbytes() / small_fl["record"].gradients.nbytes()
        assert ratio < 0.07  # ~ 2/32 plus padding


class TestDeltaGrad:
    """The shared-Hessian baseline the paper's §II critiques."""

    def test_runs_server_only(self, small_fl):
        from repro.unlearning import DeltaGradUnlearner

        sign_record = with_sign_store(small_fl["record"])
        result = DeltaGradUnlearner(clip_threshold=5.0).unlearn(
            sign_record, [5], small_fl["model"]
        )
        assert result.client_gradient_calls == 0
        assert np.isfinite(result.params).all()

    def test_worse_than_per_client(self, small_fl):
        """Reproduces §II: one shared Hessian underperforms per-client
        Hessians for FL recovery."""
        from repro.unlearning import DeltaGradUnlearner

        sign_record = with_sign_store(small_fl["record"])
        shared = DeltaGradUnlearner(clip_threshold=5.0).unlearn(
            sign_record, [5], small_fl["model"]
        )
        per_client = SignRecoveryUnlearner(clip_threshold=5.0).unlearn(
            sign_record, [5], small_fl["model"]
        )
        assert acc(small_fl, per_client.params) >= acc(small_fl, shared.params)

    def test_invalid_params(self):
        from repro.unlearning import DeltaGradUnlearner

        with pytest.raises(ValueError):
            DeltaGradUnlearner(clip_threshold=0.0)
        with pytest.raises(ValueError):
            DeltaGradUnlearner(refresh_period=0)

    def test_no_remaining_raises(self, small_fl):
        from repro.unlearning import DeltaGradUnlearner

        sign_record = with_sign_store(small_fl["record"])
        with pytest.raises(ValueError):
            DeltaGradUnlearner().unlearn(
                sign_record, [0, 1, 2, 3, 4, 5], small_fl["model"]
            )


class TestResultDataclass:
    def test_unlearn_result_defaults(self):
        from repro.unlearning import UnlearnResult

        result = UnlearnResult(params=np.zeros(3), method="x")
        assert result.rounds_replayed == 0
        assert result.client_gradient_calls == 0
        assert result.stats == {}
