"""Replay forest + fused branch execution: tree sharing, byte identity.

The contracts under test (``docs/REPLAY.md``):

- :class:`BranchArena`'s stacked step is **bitwise identical** per row
  to the serial :meth:`SGD.step_` it replaces — the numeric fact the
  whole fusion leans on.
- The forest shares prefixes between *incomparable* overlapping forget
  sets (neither contains the other), which the old linear cache could
  not serve, resuming at the effective-set divergence frontier.
- :func:`fused_unlearn` / :meth:`handle_erasure_batch_fused` return
  results **byte-identical** to K cold serial replays — across store
  backends, under an active fault plan, and with sibling branches
  forking mid-replay.
- Node-budget LRU eviction only deepens later replays; it never
  corrupts a sibling's results.
- Daemon fusion (``fusion_width > 1``): one coalesced execution, one
  branch deadline-aborted, the other tickets still byte-identical.
"""

import numpy as np
import pytest

from repro.nn.arena import BranchArena
from repro.nn.optim import SGD
from repro.serving.daemon import ErasureDaemon
from repro.serving.requests import Deadline, DeadlineExceededError
from repro.telemetry.core import Telemetry, use_telemetry
from repro.unlearning import (
    DependentAbortError,
    ReplayForest,
    SignRecoveryUnlearner,
    UnlearningService,
    fused_unlearn,
)

from tests.test_service_cache import (
    CLIP,
    JOINS,
    NUM_ROUNDS,
    build_record,
    build_service,
    cold_reference,
)
from repro.faults import ClientFault, FaultPlan


def fresh_unlearner():
    return SignRecoveryUnlearner(clip_threshold=CLIP, prefix_cache=ReplayForest())


def assert_result_matches(result, reference):
    assert result.params.tobytes() == reference.params.tobytes()
    assert result.rounds_replayed == reference.rounds_replayed
    assert result.stats == reference.stats


# ----------------------------------------------------------------------
# BranchArena: allocation determinism and bitwise step identity
# ----------------------------------------------------------------------
class TestBranchArena:
    def test_acquire_release_lowest_first(self):
        arena = BranchArena(4, 3)
        assert [arena.acquire() for _ in range(3)] == [0, 1, 2]
        arena.release(1)
        assert arena.acquire() == 1
        assert arena.active == 3

    def test_acquire_copies_initial(self):
        arena = BranchArena(2, 4)
        row = arena.acquire(np.arange(4.0))
        arena.row(row)[0] = 99.0
        other = arena.acquire(np.arange(4.0))
        assert arena.row(other)[0] == 0.0  # rows are independent

    def test_exhaustion_and_double_release(self):
        arena = BranchArena(1, 2)
        row = arena.acquire()
        with pytest.raises(RuntimeError):
            arena.acquire()
        arena.release(row)
        with pytest.raises(ValueError):
            arena.release(row)

    def test_step_rows_bitwise_matches_serial_sgd(self):
        rng = np.random.default_rng(7)
        k, d, lr = 5, 257, 2e-3
        start = rng.standard_normal((k, d))
        grads = rng.standard_normal((k, d))
        arena = BranchArena(k, d)
        rows = [arena.acquire(start[i]) for i in range(k)]
        arena.step_rows(rows, grads, lr)
        for i in range(k):
            serial = start[i].copy()
            SGD(lr=lr).step_(serial, grads[i])
            assert arena.row(rows[i]).tobytes() == serial.tobytes()

    def test_step_rows_shape_validation(self):
        arena = BranchArena(2, 3)
        rows = [arena.acquire(), arena.acquire()]
        with pytest.raises(ValueError):
            arena.step_rows(rows, np.zeros((1, 3)), 0.1)


# ----------------------------------------------------------------------
# forest sharing between incomparable overlapping forget sets
# ----------------------------------------------------------------------
class TestIncomparableOverlap:
    def test_overlap_resumes_at_divergence_frontier(self):
        """{5,6} then {5,7}: neither contains the other, but they share
        every round until client 6 (their symmetric difference) first
        participates — the linear prefix cache could never serve this."""
        record, model = build_record(3)
        unlearner = fresh_unlearner()
        unlearner.unlearn(record, [5, 6], model)
        assert unlearner.prefix_cache.hits == 0

        result = unlearner.unlearn(record, [5, 7], model)
        forest = unlearner.prefix_cache
        assert forest.hits == 1
        # Both requests backtrack to F=3 (client 5's join); client 6
        # joins at round 6, so the shared segment is [3, 6) — resume
        # depth 3 rounds past the backtrack round.
        assert unlearner.last_cached_prefix_rounds == JOINS[6] - JOINS[5]
        assert forest.rounds_saved == JOINS[6] - JOINS[5]
        assert_result_matches(result, cold_reference(3, {5, 7}))

    def test_forest_accumulates_sibling_nodes(self):
        record, model = build_record(3)
        unlearner = fresh_unlearner()
        unlearner.unlearn(record, [5, 6], model)
        nodes_before = unlearner.prefix_cache.node_count
        unlearner.unlearn(record, [5, 7], model)
        # The divergent tail stores sibling nodes under the same root.
        assert len(unlearner.prefix_cache) == 1
        assert unlearner.prefix_cache.node_count > nodes_before


# ----------------------------------------------------------------------
# fused == K cold serial replays, byte-identical
# ----------------------------------------------------------------------
FUSED_SETS = [
    frozenset({5}),
    frozenset({5, 6}),
    frozenset({5, 7}),      # incomparable with {5, 6}
    frozenset({5, 6, 7}),
    frozenset({6, 7}),      # different backtrack round (F=6)
]


class TestFusedByteIdentity:
    @pytest.mark.parametrize("backend", ["dict", "mmap"])
    def test_fused_matches_cold_serial(self, backend, tmp_path):
        directory = str(tmp_path / "mmap") if backend == "mmap" else None
        record, model = build_record(3, backend=backend, directory=directory)
        unlearner = fresh_unlearner()
        outcomes, stats = fused_unlearn(unlearner, record, FUSED_SETS)
        assert stats.requests == len(FUSED_SETS)
        assert stats.forks > 0                      # branches really diverged
        assert stats.shared_rounds > 0              # and really shared work
        assert stats.executed_node_rounds < stats.member_rounds
        for forget, outcome in zip(FUSED_SETS, outcomes):
            assert outcome.error is None
            assert_result_matches(outcome.result, cold_reference(3, set(forget)))

    def test_fused_matches_cold_serial_under_faults(self):
        plan = FaultPlan(
            client_faults={
                (4, 1): ClientFault("crash"),
                (8, 6): ClientFault("crash"),
                (5, 4): ClientFault("flaky", failures=1),
            },
            seed=99,
        )
        record, model = build_record(11, fault_plan=plan)
        unlearner = fresh_unlearner()
        outcomes, _ = fused_unlearn(unlearner, record, FUSED_SETS)
        for forget, outcome in zip(FUSED_SETS, outcomes):
            assert outcome.error is None
            assert_result_matches(
                outcome.result, cold_reference(11, set(forget), fault_plan=plan)
            )

    def test_warm_forest_skips_all_rounds(self):
        record, model = build_record(3)
        unlearner = fresh_unlearner()
        fused_unlearn(unlearner, record, FUSED_SETS)
        outcomes, stats = fused_unlearn(unlearner, record, FUSED_SETS)
        assert stats.executed_node_rounds == 0      # everything resumed
        for forget, outcome in zip(FUSED_SETS, outcomes):
            assert outcome.error is None
            assert outcome.cached_prefix_rounds == NUM_ROUNDS - min(
                JOINS[c] for c in forget
            )
            assert_result_matches(outcome.result, cold_reference(3, set(forget)))

    def test_invalid_request_fails_its_slot_only(self):
        record, model = build_record(3)
        unlearner = fresh_unlearner()
        outcomes, _ = fused_unlearn(
            unlearner, record, [frozenset({5}), frozenset({99}), frozenset({6})]
        )
        assert outcomes[0].error is None
        assert isinstance(outcomes[1].error, ValueError)
        assert outcomes[2].error is None
        assert_result_matches(outcomes[2].result, cold_reference(3, {6}))


# ----------------------------------------------------------------------
# node-budget eviction never corrupts siblings
# ----------------------------------------------------------------------
class TestNodeEviction:
    def test_starved_forest_stays_byte_identical(self):
        forest = ReplayForest(max_entries=8, max_nodes=3)
        record, model = build_record(3)
        unlearner = SignRecoveryUnlearner(clip_threshold=CLIP, prefix_cache=forest)
        outcomes, _ = fused_unlearn(unlearner, record, FUSED_SETS)
        assert forest.node_count <= 3
        assert forest.node_evictions > 0
        for forget, outcome in zip(FUSED_SETS, outcomes):
            assert outcome.error is None
            assert_result_matches(outcome.result, cold_reference(3, set(forget)))
        # Re-serving against the starved forest still matches cold.
        for forget in FUSED_SETS:
            result = unlearner.unlearn(record, sorted(forget), model)
            assert_result_matches(result, cold_reference(3, set(forget)))


# ----------------------------------------------------------------------
# service fused batch: cumulative commit, cascade abort
# ----------------------------------------------------------------------
class TestServiceFusedBatch:
    def test_fused_batch_matches_serial_batch(self):
        fused = build_service(3).handle_erasure_batch_fused([5, 6, 7])
        serial = build_service(3).handle_erasure_batch([5, 6, 7])
        assert fused.errors == [None, None, None]
        for fo, so in zip(fused.outcomes, serial):
            assert fo.forgotten == so.forgotten
            assert fo.params.tobytes() == so.params.tobytes()
            assert fo.result.stats == so.result.stats
        assert fused.stats.shared_rounds > 0

    def test_aborted_member_cascades_and_earlier_members_commit(self):
        service = build_service(11)
        polls = {"n": 0}

        def cancel_second():
            polls["n"] += 1
            if polls["n"] >= 2:
                raise DeadlineExceededError("budget spent")

        report = service.handle_erasure_batch_fused(
            [5, 6, 7], cancel_checks=[None, cancel_second, None]
        )
        assert report.outcomes[0] is not None
        assert isinstance(report.errors[1], DeadlineExceededError)
        assert isinstance(report.errors[2], DependentAbortError)
        assert service.erased_clients == [5]
        solo = build_service(11).handle_erasure_request(5)
        assert report.outcomes[0].params.tobytes() == solo.params.tobytes()
        # Resubmitting the unserved suffix completes it, byte-identical
        # to an uninterrupted cumulative batch.
        retry = service.handle_erasure_batch_fused([6, 7])
        assert retry.errors == [None, None]
        full = build_service(11).handle_erasure_batch([5, 6, 7])
        assert retry.outcomes[1].params.tobytes() == full[2].params.tobytes()

    def test_invalid_ids_fail_slots_without_joining_chain(self):
        service = build_service(3)
        service.handle_erasure_request(5)
        report = service.handle_erasure_batch_fused([5, 99, 6])
        assert isinstance(report.errors[0], ValueError)   # already erased
        assert isinstance(report.errors[1], ValueError)   # unknown
        assert report.outcomes[2] is not None
        # slot 2's cumulative set is {5, 6} — invalid ids contributed nothing
        reference = build_service(3).handle_erasure_batch([5, 6])[1]
        assert report.outcomes[2].params.tobytes() == reference.params.tobytes()


# ----------------------------------------------------------------------
# daemon fusion: coalesced tickets, per-ticket deadlines
# ----------------------------------------------------------------------
class CountingClock:
    """Deterministic clock: every call advances one microsecond."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        self.now += 1e-6
        return self.now


class TestDaemonFusion:
    def run_daemon(self, seed, fusion_width, deadlines=(None, None, None)):
        clock = CountingClock()
        telemetry = Telemetry()
        with use_telemetry(telemetry):
            service = build_service(seed)
            daemon = ErasureDaemon(
                service, workers=1, fusion_width=fusion_width, clock=clock
            )
            # Queue before starting the single worker so the whole
            # backlog is visible to one coalescing dequeue.
            futures = [
                daemon.submit(cid, deadline=dl)
                for cid, dl in zip((5, 6, 7), deadlines)
            ]
            daemon.start()
            results = []
            for future in futures:
                try:
                    results.append(future.result(timeout=60))
                except Exception as exc:  # noqa: BLE001 - collected for asserts
                    results.append(exc)
            daemon.stop()
        return results, daemon, telemetry

    def test_fused_daemon_matches_serial_daemon(self):
        fused, daemon, telemetry = self.run_daemon(3, fusion_width=4)
        serial, _, _ = self.run_daemon(3, fusion_width=1)
        for f, s in zip(fused, serial):
            assert f.status == "ok" and s.status == "ok"
            assert f.params.tobytes() == s.params.tobytes()
        assert (
            telemetry.registry.counter_value("serving_fused_tickets_total") == 3
        )
        assert daemon.counts["ok"] == 3

    def test_deadline_aborts_one_branch_others_byte_identical(self):
        # 1 µs/clock call: a 12 µs budget survives dequeue bookkeeping
        # but expires during the branch's per-round cancel polls
        # (serving_deadline_aborts_total == 1 proves mid-replay, not
        # at-dequeue).
        clock_budget = 12e-6
        results, daemon, telemetry = self.run_daemon(
            11, fusion_width=4, deadlines=(None, None, clock_budget)
        )
        serial, _, _ = self.run_daemon(11, fusion_width=1)
        assert results[0].status == "ok"
        assert results[1].status == "ok"
        assert isinstance(results[2], DeadlineExceededError)
        for k in range(2):
            assert results[k].params.tobytes() == serial[k].params.tobytes()
        assert daemon.counts["deadline"] == 1
        assert daemon.service.erased_clients == [5, 6]
        assert (
            telemetry.registry.counter_value("serving_deadline_aborts_total") == 1
        )
