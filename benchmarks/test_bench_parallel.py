"""Tracked serial-vs-parallel baseline for the execution engine.

Runs the same 8-client / 20-round federated simulation (and the
recovery replay over its record) once on the serial reference and once
through the process pool, then writes the measured wall times, the
speedup, and the host's CPU count to ``results/parallel.json`` (with
the session telemetry snapshot attached, as every benchmark record).

Bitwise identity between the two runs is a hard assertion — always.
The ≥2× speedup is only asserted when the host actually has the cores
for it (``os.cpu_count() >= 4``); on smaller machines the numbers are
still measured and recorded, so the baseline tracks every substrate it
runs on.  This is the "substrate-dependent: measured and recorded,
shape is the assertion" idiom used across the suite.
"""

import os
import time

import numpy as np
import pytest

from repro.datasets import make_synthetic_mnist, partition_iid, train_test_split
from repro.fl import FederatedSimulation, ParticipationSchedule, VehicleClient
from repro.nn import mlp
from repro.storage import SignGradientStore
from repro.unlearning import SignRecoveryUnlearner
from repro.utils.rng import SeedSequenceTree

NUM_CLIENTS = 8
NUM_ROUNDS = 20
IMAGE = 8
FEATURES = IMAGE * IMAGE
WORKERS = 4
SEED = 2024


def build_sim(backend=None, workers=None):
    """The benchmark workload, rebuilt identically for every engine."""
    tree = SeedSequenceTree(SEED)
    data = make_synthetic_mnist(400, tree.rng("data"), image_size=IMAGE)
    train, _ = train_test_split(data, 0.2, tree.rng("split"))
    shards = partition_iid(train, NUM_CLIENTS, tree.rng("part"))
    clients = [
        VehicleClient(i, shards[i], tree.rng(f"c{i}"), batch_size=32)
        for i in range(NUM_CLIENTS)
    ]
    model = mlp(tree.rng("model"), FEATURES, 10, hidden=16)
    # Client 2 joins late so the recovery window has L-BFGS history.
    schedule = ParticipationSchedule.with_events(
        range(NUM_CLIENTS), joins={2: NUM_ROUNDS // 3}
    )
    sim = FederatedSimulation(
        model,
        clients,
        2e-3,
        schedule=schedule,
        gradient_store=SignGradientStore(),
        backend=backend,
        workers=workers,
    )
    return model, sim


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


@pytest.mark.benchmark(group="parallel")
def test_parallel_training_and_recovery_vs_serial(benchmark, save_result):
    """One serial and one process-pool pass over train + unlearn."""
    cpu_count = os.cpu_count() or 1

    def measure(backend, workers):
        model, sim = build_sim(backend=backend, workers=workers)
        record, train_seconds = _timed(lambda: sim.run(NUM_ROUNDS))
        unlearner = SignRecoveryUnlearner(
            refresh_period=4, backend=backend, workers=workers
        )
        result, recover_seconds = _timed(
            lambda: unlearner.unlearn(record, forget_ids=[2], model=model)
        )
        return {
            "record": record,
            "result": result,
            "train_seconds": train_seconds,
            "recover_seconds": recover_seconds,
        }

    serial = measure(None, None)  # resolves to the serial default

    def parallel_pass():
        return measure("process", WORKERS)

    parallel = benchmark.pedantic(parallel_pass, rounds=1, iterations=1)

    # Hard contract: the engines are interchangeable bit for bit.
    np.testing.assert_array_equal(
        parallel["record"].final_params(), serial["record"].final_params()
    )
    for t in range(NUM_ROUNDS + 1):
        np.testing.assert_array_equal(
            parallel["record"].params_at(t), serial["record"].params_at(t)
        )
    np.testing.assert_array_equal(
        parallel["result"].params, serial["result"].params
    )
    assert parallel["result"].stats == serial["result"].stats

    train_speedup = serial["train_seconds"] / max(parallel["train_seconds"], 1e-9)
    recover_speedup = serial["recover_seconds"] / max(
        parallel["recover_seconds"], 1e-9
    )
    save_result(
        "parallel",
        {
            "clients": NUM_CLIENTS,
            "rounds": NUM_ROUNDS,
            "model_params": int(build_sim()[0].num_params),
            "workers": WORKERS,
            "backend": "process",
            "cpu_count": cpu_count,
            "serial_train_seconds": serial["train_seconds"],
            "parallel_train_seconds": parallel["train_seconds"],
            "train_speedup": train_speedup,
            "serial_recover_seconds": serial["recover_seconds"],
            "parallel_recover_seconds": parallel["recover_seconds"],
            "recover_speedup": recover_speedup,
        },
    )
    # Speedup is substrate-dependent: asserted only where the cores exist,
    # measured and recorded everywhere.
    if cpu_count >= 4:
        assert train_speedup >= 2.0
