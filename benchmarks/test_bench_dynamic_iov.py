"""Benchmark: the dynamic-IoV extension experiment — training over a
mobility-generated participation schedule, then server-only unlearning
of a mid-joining vehicle while other vehicles have left FL.

This is the scenario §II Challenge II says FedRecover/FedEraser cannot
handle; the assertion is that the paper's scheme completes with zero
client gradient computations and meaningful recovered accuracy.
"""

import pytest

from repro.eval.experiments import run_dynamic_iov


@pytest.mark.benchmark(group="dynamic-iov")
def test_dynamic_iov(benchmark, scale, save_result):
    result = benchmark.pedantic(
        lambda: run_dynamic_iov(scale=scale), rounds=1, iterations=1
    )
    save_result("dynamic_iov", result)
    assert result["client_gradient_calls"] == 0
    assert result["recovered_accuracy"] > 0.4
    assert result["dropout_events"] >= 0
