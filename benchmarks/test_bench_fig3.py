"""Benchmark: regenerate Fig. 3 (recovered accuracy vs sign threshold δ).

Paper reference: optimum at δ = 1e-6 (86 %); larger δ discards update
information (more elements stored as 0) and degrades accuracy; very
small δ slightly degrades by amplifying negligible elements.

Reproduced shape: a plateau across tiny δ values and a collapse once δ
approaches the gradient-element scale (the zero-fraction diagnostic
confirms the mechanism: large δ zeroes most stored elements).
"""

import pytest

from repro.eval.experiments import run_fig3

DELTA_VALUES = (1e-8, 1e-7, 1e-6, 1e-5, 1e-4, 1e-2, 1e-1, 0.5)


@pytest.mark.benchmark(group="fig3")
def test_fig3(benchmark, scale, save_result):
    result = benchmark.pedantic(
        lambda: run_fig3(scale=scale, delta_values=DELTA_VALUES), rounds=1, iterations=1
    )
    save_result("fig3", result)
    points = result["measured"]
    by_delta = {p["delta"]: p for p in points}
    # Plateau: the paper's 1e-6 performs within noise of the best tiny δ.
    tiny = [by_delta[d]["accuracy"] for d in (1e-8, 1e-7, 1e-6)]
    assert max(tiny) - min(tiny) < 0.08, points
    # Collapse at large δ (information discarded).  A smoke-scale model
    # barely trains above chance, so there is no accuracy to collapse
    # from — the plateau and zero-fraction mechanism checks still run.
    if scale != "smoke":
        assert by_delta[0.5]["accuracy"] < max(tiny) - 0.05, points
    # Mechanism: zero-fraction grows monotonically in δ.
    zeros = [p["zero_fraction"] for p in points]
    assert all(a <= b + 1e-9 for a, b in zip(zeros, zeros[1:])), zeros
