"""Tracked amortized-erasure-serving baseline.

One training run, then the same four queued erasure requests served two
ways: four cold cache-less replays (the pre-cache data path) and one
``UnlearningService.handle_erasure_batch`` call against the shared
replay prefix cache.  Byte identity between the two is a hard
assertion.  The amortized speedup is determined by replay-round counts
— the forget vehicles join at staggered rounds, so the batch replays
45 rounds where the cold path replays 144 — which makes the ≥2×
speedup assertion substrate-independent (always on, unlike the
CPU-gated parallel baseline).

Also measured: requests/sec, the cache hit rate, and the dict-vs-mmap
store open/read latency for the same record.  Everything lands in
``results/service.json`` with the session telemetry snapshot attached.
"""

import shutil
import time

import pytest

from repro.datasets import make_synthetic_mnist, partition_iid
from repro.fl import FederatedSimulation, ParticipationSchedule, VehicleClient
from repro.nn import mlp
from repro.storage import MmapSignGradientStore, SignGradientStore
from repro.unlearning import SignRecoveryUnlearner, UnlearningService
from repro.utils.rng import SeedSequenceTree

NUM_CLIENTS = 10
NUM_ROUNDS = 40
IMAGE = 8
FEATURES = IMAGE * IMAGE
SEED = 2024
#: The four queued requests: late joiners at staggered rounds, so each
#: batch request's cached prefix grows while every cold replay spans
#: the full window from the earliest join.
JOINS = {6: 4, 7: 34, 8: 38, 9: 39}
BATCH = sorted(JOINS)
CLIP = 5.0


def build_record():
    tree = SeedSequenceTree(SEED)
    data = make_synthetic_mnist(400, tree.rng("data"), image_size=IMAGE)
    shards = partition_iid(data, NUM_CLIENTS, tree.rng("part"))
    clients = [
        VehicleClient(i, shards[i], tree.rng(f"c{i}"), batch_size=16)
        for i in range(NUM_CLIENTS)
    ]
    model = mlp(tree.rng("model"), FEATURES, 10, hidden=8)
    schedule = ParticipationSchedule.with_events(range(NUM_CLIENTS), joins=JOINS)
    sim = FederatedSimulation(
        model,
        clients,
        2e-3,
        schedule=schedule,
        gradient_store=SignGradientStore(),
    )
    return sim.run(NUM_ROUNDS), model


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def read_all_rounds(store):
    return sum(len(store.get_round(t)) for t in store.rounds())


@pytest.mark.benchmark(group="service")
def test_batch_erasure_amortization(benchmark, save_result, tmp_path):
    record, model = build_record()

    # Store open/read latency: the dict store vs the round-major mmap
    # layout built from it (measured before the service purges anyone).
    mmap_dir = str(tmp_path / "mmap-store")
    _, build_seconds = _timed(
        lambda: MmapSignGradientStore.from_store(record.gradients, mmap_dir)
    )
    mmap_store, mmap_open_seconds = _timed(
        lambda: MmapSignGradientStore.open(mmap_dir)
    )
    dict_reads, dict_read_seconds = _timed(
        lambda: read_all_rounds(record.gradients)
    )
    mmap_reads, mmap_read_seconds = _timed(lambda: read_all_rounds(mmap_store))
    assert mmap_reads == dict_reads

    # Cold reference: each request replayed cache-less from scratch
    # (read-only — the record is untouched for the batch that follows).
    def cold_pass():
        results = []
        forget = []
        for cid in BATCH:
            forget.append(cid)
            unlearner = SignRecoveryUnlearner(clip_threshold=CLIP)
            results.append(unlearner.unlearn(record, list(forget), model))
        return results

    cold_results, cold_seconds = _timed(cold_pass)

    # Amortized: the same four requests as one service batch.
    service = UnlearningService(record=record, model=model, clip_threshold=CLIP)

    def batch_pass():
        return service.handle_erasure_batch(BATCH)

    outcomes, batch_seconds = _timed(
        lambda: benchmark.pedantic(batch_pass, rounds=1, iterations=1)
    )

    # Hard contract: amortization never changes a bit.
    for outcome, cold in zip(outcomes, cold_results):
        assert outcome.params.tobytes() == cold.params.tobytes()
        assert outcome.result.stats == cold.stats

    cache = service.prefix_cache
    hit_rate = cache.hits / max(cache.hits + cache.misses, 1)
    cold_rounds = sum(r.rounds_replayed for r in cold_results)
    batch_rounds = cold_rounds - cache.rounds_saved
    speedup = cold_seconds / max(batch_seconds, 1e-9)
    save_result(
        "service",
        {
            "clients": NUM_CLIENTS,
            "rounds": NUM_ROUNDS,
            "batch": BATCH,
            "join_rounds": JOINS,
            "cold_seconds": cold_seconds,
            "batch_seconds": batch_seconds,
            "amortized_speedup": speedup,
            "requests_per_second": len(BATCH) / max(batch_seconds, 1e-9),
            "cold_rounds_replayed": cold_rounds,
            "batch_rounds_replayed": batch_rounds,
            "cached_prefix_rounds": [o.cached_prefix_rounds for o in outcomes],
            "cache_hits": cache.hits,
            "cache_misses": cache.misses,
            "cache_hit_rate": hit_rate,
            "cache_rounds_saved": cache.rounds_saved,
            "mmap_build_seconds": build_seconds,
            "mmap_open_seconds": mmap_open_seconds,
            "dict_read_all_seconds": dict_read_seconds,
            "mmap_read_all_seconds": mmap_read_seconds,
            "round_reads": dict_reads,
        },
    )
    shutil.rmtree(mmap_dir, ignore_errors=True)
    # The ratio is fixed by the join schedule (144 cold replay rounds vs
    # 45 amortized), not by the substrate — assert it unconditionally.
    assert hit_rate == pytest.approx(0.75)
    assert cache.rounds_saved > 0
    assert speedup >= 2.0
