"""Tracked pipelined-replay-data-path baseline.

One synthetic training record served three ways:

1. **Identity sweep** — the same erasure replayed with prefetching off
   (``prefetch_depth=0``) and on (``prefetch_depth=4``) over every sign
   backend (dict, mmap, tiered-cold).  Byte identity of the recovered
   parameters is a hard assertion; the pipeline may only change *when*
   rounds are decoded, never *what* they decode to.

2. **Storage-bound speedup** — sync vs prefetched replay over a cold
   tiered store wrapped in a block-device latency model.  This host has
   a single CPU, so threads cannot overlap the CPU-bound parts of
   decode; the speedup a prefetcher buys in production comes from
   overlapping *genuinely blocking* storage reads (cold-device or
   remote-object fetches, which release the GIL) with replay compute.
   The wrapper injects that wait (``LATENCY_S`` per round fetch, a
   ``time.sleep`` standing in for the device) before delegating to the
   real cold-tier decode, making the overlap measurable and the ≥1.3×
   assertion deterministic.  The raw page-cached numbers (no injected
   latency, decode is pure CPU) are recorded but **not** asserted —
   on one core they hover around 1× by construction.

3. **Shared decode cache under daemon load** — an
   :class:`~repro.serving.ErasureDaemon` at concurrency 4 serving
   staggered erasures over one record; successive replays must resolve
   repeated rounds from the service's shared
   :class:`~repro.storage.prefetch.RoundDecodeCache` (hit count > 0
   asserted).

Everything lands in ``results/prefetch.json`` with the session
telemetry snapshot (``storage_prefetch_*`` counters) attached.
"""

import time

import numpy as np
import pytest

from repro.fl.history import TrainingRecord
from repro.fl.membership import MembershipLedger
from repro.serving import ErasureDaemon
from repro.storage import (
    MmapSignGradientStore,
    ModelCheckpointStore,
    SignGradientStore,
    TieredSignGradientStore,
)
from repro.unlearning import SignRecoveryUnlearner, UnlearningService

DELTA = 1e-4
LEARNING_RATE = 2e-3
DEPTH = 4
#: Injected per-round block-fetch wait (seconds) for the storage-bound
#: workload — the stand-in for a cold device / remote object store.
LATENCY_S = 0.05

#: (dim, rounds, cohort) per scale; smoke keeps the whole file under a
#: few seconds, ci matches the calibrated ≥1.3× headroom (~3.5× here).
SIZES = {
    "smoke": (40_000, 10, 6),
    "ci": (100_000, 24, 8),
    "paper": (200_000, 40, 10),
}


class ColdDeviceStore:
    """Read-through wrapper modelling a blocking round fetch.

    ``get_round`` sleeps for ``latency_s`` — releasing the GIL exactly
    as a real device or network wait would — then delegates to the
    wrapped store.  Everything else passes through untouched, so the
    decoded bytes are the wrapped store's bytes.
    """

    supports_bulk_round = True

    def __init__(self, inner, latency_s: float):
        self._inner = inner
        self._latency = latency_s

    def get_round(self, t):
        time.sleep(self._latency)
        return self._inner.get_round(t)

    def __getattr__(self, name):
        return getattr(self._inner, name)


def build_history(dim, rounds, cohort, seed=7):
    """Checkpoints + ledger + per-round dense updates for one record."""
    rng = np.random.default_rng(seed)
    ledger = MembershipLedger()
    for c in range(cohort):
        ledger.join(c, 0)
    checkpoints = ModelCheckpointStore()
    params = rng.normal(size=dim) * 0.01
    updates = []
    for t in range(rounds):
        checkpoints.put(t, params)
        updates.append({c: rng.normal(size=dim) * 1e-3 for c in range(cohort)})
    checkpoints.put(rounds, params)
    return checkpoints, ledger, updates


def make_record(store, checkpoints, ledger, updates, cohort):
    for t, round_updates in enumerate(updates):
        store.put_round(t, round_updates)
    sizes = {c: 100 for c in range(cohort)}
    return TrainingRecord(
        checkpoints, store, ledger, sizes, len(updates), LEARNING_RATE
    )


def cold_tiered_store(directory):
    store = TieredSignGradientStore(directory, delta=DELTA, hot_budget_bytes=1 << 20)
    return store


def demote_all(store):
    store.flush()
    store.compact(cold_after=0)
    return store


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def _replay(record, depth, forget=(0,)):
    unlearner = SignRecoveryUnlearner(prefetch_depth=depth)
    return unlearner.unlearn(record, list(forget), None)


@pytest.mark.benchmark(group="prefetch")
def test_prefetch_pipeline(benchmark, scale, save_result, tmp_path):
    dim, rounds, cohort = SIZES.get(scale, SIZES["ci"])
    checkpoints, ledger, updates = build_history(dim, rounds, cohort)

    # --- 1. byte identity across every backend, prefetch on vs off ---
    dict_store = SignGradientStore(delta=DELTA)
    record = make_record(dict_store, checkpoints, ledger, updates, cohort)
    backends = {
        "dict": dict_store,
        "mmap": MmapSignGradientStore.from_store(
            dict_store, str(tmp_path / "mmap-layout")
        ),
        "tiered-cold": demote_all(
            make_record(
                cold_tiered_store(str(tmp_path / "tiered-layout")),
                checkpoints,
                ledger,
                updates,
                cohort,
            ).gradients
        ),
    }
    identity = {}
    for name, store in backends.items():
        rec = TrainingRecord(
            checkpoints, store, ledger, record.client_sizes, rounds, LEARNING_RATE
        )
        sync = _replay(rec, depth=0)
        piped = _replay(rec, depth=DEPTH)
        identity[name] = sync.params.tobytes() == piped.params.tobytes()
        assert identity[name], f"{name}: prefetch changed recovered bytes"

    # --- 2. storage-bound speedup over the latency-modelled cold tier ---
    def cold_record(latency):
        store = TieredSignGradientStore.open(str(tmp_path / "tiered-layout"))
        if latency:
            store = ColdDeviceStore(store, latency)
        return TrainingRecord(
            checkpoints, store, ledger, record.client_sizes, rounds, LEARNING_RATE
        )

    sync_result, sync_seconds = _timed(lambda: _replay(cold_record(LATENCY_S), 0))
    piped_result, piped_seconds = benchmark.pedantic(
        lambda: _timed(lambda: _replay(cold_record(LATENCY_S), DEPTH)), rounds=1
    )
    speedup = sync_seconds / piped_seconds
    assert piped_result.params.tobytes() == sync_result.params.tobytes()
    assert speedup >= 1.3, (
        f"prefetch depth={DEPTH} only {speedup:.2f}x over sync "
        f"on the storage-bound cold-tier workload"
    )

    # Raw page-cached replay (no injected latency): recorded for the
    # record, not asserted — decode is pure CPU and this host has one
    # core, so there is nothing for the pipeline to overlap.
    _, raw_sync_seconds = _timed(lambda: _replay(cold_record(0), 0))
    _, raw_piped_seconds = _timed(lambda: _replay(cold_record(0), DEPTH))

    # --- 3. shared decode cache under daemon concurrency 4 ---
    # The cache only pays if the working set fits its byte budget — an
    # LRU scanned end-to-end while over budget evicts every entry just
    # before the next replay needs it.  Cap the daemon record at 12
    # rounds and size the budget to hold all of them decoded.
    daemon_updates = updates[: min(rounds, 12)]
    daemon_store = demote_all(
        make_record(
            cold_tiered_store(str(tmp_path / "daemon-layout")),
            checkpoints,
            ledger,
            daemon_updates,
            cohort,
        ).gradients
    )
    daemon_record = TrainingRecord(
        checkpoints, daemon_store, ledger, dict(record.client_sizes),
        len(daemon_updates), LEARNING_RATE,
    )
    cache_budget = 2 * len(daemon_updates) * cohort * dim * 8
    service = UnlearningService(
        daemon_record, None, prefetch_depth=DEPTH,
        decode_cache_bytes=cache_budget,
    )
    daemon = ErasureDaemon(service, capacity=16, workers=4).start()
    try:
        futures = [daemon.submit(c) for c in range(1, 5)]
        statuses = [f.result(timeout=120).status for f in futures]
        # daemon.stop() drains the service's prefetch state, so the
        # cache counters have to be read while it is still live
        cache = service.decode_cache
        cache_stats = (
            {
                "hits": cache.hits,
                "misses": cache.misses,
                "hit_rate": cache.hit_rate(),
                "entries": cache.entries,
            }
            if cache is not None
            else {}
        )
    finally:
        daemon.stop()
    assert all(s == "ok" for s in statuses)
    hits = cache_stats.get("hits", 0)
    assert hits > 0, "shared decode cache saw no hits at concurrency 4"
    assert service.drain_prefetch()
    assert service.decode_cache is None

    save_result(
        "prefetch",
        {
            "scale": scale,
            "dim": dim,
            "rounds": rounds,
            "cohort": cohort,
            "prefetch_depth": DEPTH,
            "identity": identity,
            "latency_model_seconds": LATENCY_S,
            "latency_model": (
                "time.sleep per round fetch modelling a blocking cold-device "
                "read; raw page-cached numbers recorded unasserted"
            ),
            "storage_bound": {
                "sync_seconds": sync_seconds,
                "prefetch_seconds": piped_seconds,
                "speedup": speedup,
            },
            "page_cached": {
                "sync_seconds": raw_sync_seconds,
                "prefetch_seconds": raw_piped_seconds,
                "speedup": raw_sync_seconds / raw_piped_seconds,
            },
            "daemon": {
                "workers": 4,
                "requests": len(statuses),
                "decode_cache": cache_stats,
            },
        },
    )
