"""Benchmark: tiered-store capacity sweep to >=100k distinct clients.

The capacity claim under test (`docs/ARCHITECTURE.md`, "Storage
tiering"): ingestion through :class:`TieredSignGradientStore` is
bounded-memory — peak allocation is O(hot budget + one round's working
set), independent of history length — while the warm tier costs exactly
``ceil(d/4)`` bytes per live row and the cold tier compresses at least
2x below that on realistic (mostly sub-threshold) gradients.

The sweep ingests a synthetic participation trace (every round a fresh
cohort, so distinct clients = rounds x cohort), spilling under a small
hot budget, then compacts with a cold horizon and measures per-tier
bytes/client/round, hit counts, and read latencies.  The full run
(`make bench-storage-scale`) covers 102,400 clients and is marked
``slow``; ``REPRO_SCALE=smoke`` drops to a 5,120-client sanity pass.
Results land in ``benchmarks/results/storage_scale.json``.
"""

import resource
import shutil
import tempfile
import time
import tracemalloc

import numpy as np
import pytest

from repro.storage import SignGradientStore, TieredSignGradientStore
from repro.storage.tiered import TIER_COLD, TIER_HOT, TIER_WARM
from repro.telemetry import current_telemetry

DELTA = 1e-6
HOT_BUDGET = 256 * 1024

#: scale -> (rounds, cohort per round, gradient dimension)
SWEEPS = {
    "smoke": (40, 128, 256),
    "ci": (200, 512, 256),
    "paper": (200, 512, 256),
}


def _round_updates(rng, base, cohort, dim):
    """One cohort of mostly sub-threshold gradients (90 % exact zeros
    after ternarization — the realistic sparse-update regime that the
    cold tier's zlib pass exploits)."""
    dense = rng.normal(size=(cohort, dim)) * 1e-3
    dense[rng.random((cohort, dim)) < 0.9] = 0.0
    return {int(base + i): dense[i] for i in range(cohort)}


def _timed_reads(store, rounds, repeats=3):
    """Mean get_round latency over ``rounds`` (seconds)."""
    if not rounds:
        return None
    start = time.perf_counter()
    served = 0
    for _ in range(repeats):
        for t in rounds:
            served += len(store.get_round(t))
    elapsed = time.perf_counter() - start
    return {"rounds_read": len(rounds) * repeats,
            "mean_round_seconds": elapsed / (len(rounds) * repeats),
            "rows_served": served}


def _run_sweep(scale):
    num_rounds, cohort, dim = SWEEPS.get(scale, SWEEPS["ci"])
    rng = np.random.default_rng(2024)
    directory = tempfile.mkdtemp(prefix="bench-tiered-")
    telemetry = current_telemetry()
    try:
        store = TieredSignGradientStore(
            directory,
            delta=DELTA,
            hot_budget_bytes=HOT_BUDGET,
            cold_after=num_rounds // 4,
        )
        sample = {}
        hot_bytes_max = 0
        tracemalloc.start()
        tracemalloc.reset_peak()
        for t in range(num_rounds):
            updates = _round_updates(rng, t * cohort, cohort, dim)
            store.put_round(t, updates)
            hot_bytes_max = max(hot_bytes_max, store.tier_bytes()[TIER_HOT])
            if t % 13 == 0:
                cid = t * cohort + 7
                # copy: a view would pin the round's whole dense matrix
                # and turn the spot-check corpus into a history leak
                sample[(t, cid)] = updates[cid].copy()
        _, peak_alloc = tracemalloc.get_traced_memory()
        tracemalloc.stop()

        # hot-tier latency while the newest rounds are still hot
        hot_rounds = [t for t in store.rounds() if t in store._hot][-4:]
        hot_latency = _timed_reads(store, hot_rounds)

        store.flush()
        store.compact()
        stats = store.stats()
        tier_rounds = stats["tier_rounds"]
        tier_bytes = stats["tier_bytes"]
        warm_rounds = [t for t in store.rounds()
                       if store._disk[t].tier == TIER_WARM][-4:]
        cold_rounds = [t for t in store.rounds()
                       if store._disk[t].tier == TIER_COLD][:4]
        warm_latency = _timed_reads(store, warm_rounds)
        cold_latency = _timed_reads(store, cold_rounds)

        # bitwise spot-check against the dict reference
        reference = SignGradientStore(delta=DELTA)
        for (t, cid), g in sample.items():
            reference.put(t, cid, g)
            np.testing.assert_array_equal(store.get(t, cid), reference.get(t, cid))

        per_tier = {}
        for tier, latency in ((TIER_HOT, hot_latency),
                              (TIER_WARM, warm_latency),
                              (TIER_COLD, cold_latency)):
            rounds_in_tier = tier_rounds[tier]
            per_tier[tier] = {
                "rounds": rounds_in_tier,
                "bytes": tier_bytes[tier],
                "bytes_per_client_round": (
                    tier_bytes[tier] / (rounds_in_tier * cohort)
                    if rounds_in_tier else None
                ),
                "hits_total": telemetry.registry.counter_value(
                    "storage_tier_hits_total", {"tier": tier}
                ),
                "latency": latency,
            }

        # one round's float64 working set plus codec intermediates —
        # the peak-allocation bound is O(budget + working set), NOT
        # O(history): a run this size holds ~100x the budget in
        # payloads, so scaling with history would fail immediately.
        round_raw = cohort * dim * 8
        working_set_slack = 8 * round_raw + (4 << 20)
        result = {
            "scale": scale,
            "rounds": num_rounds,
            "cohort": cohort,
            "dim": dim,
            "distinct_clients": num_rounds * cohort,
            "hot_budget_bytes": HOT_BUDGET,
            "hot_bytes_max": int(hot_bytes_max),
            "peak_alloc_bytes": int(peak_alloc),
            "working_set_slack_bytes": int(working_set_slack),
            "ru_maxrss_kib": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
            "warm_bytes_per_row_expected": (dim + 3) // 4,
            "cold_compression_ratio": store.cold_compression_ratio(),
            "disk_bytes": stats["disk_bytes"],
            "nbytes": store.nbytes(),
            "generation": stats["generation"],
            "shards": stats["shards"],
            "per_tier": per_tier,
        }
        store.close()
        return result
    finally:
        if tracemalloc.is_tracing():
            tracemalloc.stop()
        shutil.rmtree(directory, ignore_errors=True)


@pytest.mark.slow
@pytest.mark.benchmark(group="storage-scale")
def test_storage_scale_sweep(benchmark, scale, save_result):
    result = benchmark.pedantic(lambda: _run_sweep(scale), rounds=1, iterations=1)
    save_result("storage_scale", result)

    if result["scale"] not in ("smoke",):
        assert result["distinct_clients"] >= 100_000
    # bounded-memory ingestion: the hot tier held its budget at every
    # round, and peak allocation tracked the budget + one round's
    # working set rather than the full history
    assert result["hot_bytes_max"] <= result["hot_budget_bytes"]
    assert (
        result["peak_alloc_bytes"]
        <= result["hot_budget_bytes"] + result["working_set_slack_bytes"]
    )
    # capacity model: warm rows cost exactly ceil(d/4) bytes
    warm = result["per_tier"][TIER_WARM]
    if warm["rounds"]:
        assert warm["bytes_per_client_round"] == result["warm_bytes_per_row_expected"]
    # cold tier earns its keep: >= 2x under the warm block layout
    assert result["cold_compression_ratio"] >= 2.0
    assert result["per_tier"][TIER_COLD]["rounds"] > 0
