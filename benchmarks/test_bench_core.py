"""Tracked baseline for the zero-copy numeric core.

Measures one *warm* train step (parameters already set, scratch buffers
already allocated) two ways on the same model:

- **legacy-emulated**: the exact pre-arena data path — flat vector
  unflattened into per-layer copies, per-ref assignment, forward +
  backward, gradients re-concatenated with ``flatten_arrays``, and an
  allocating ``w - lr * g`` update;
- **arena**: the current path — the backward pass leaves the flat
  gradient in the arena (``loss_and_flat_grad_view``) and the fused
  in-place ``SGD.step_`` updates the arena's flat parameter buffer
  directly.  No external flat vector exists: that round-trip is the
  thing the arena deleted.

Both run the identical forward/backward compute, so the ratio isolates
what the arena removed: the flatten/unflatten round-trips and the
allocating vector algebra.  Per-step allocation footprints (tracemalloc
peak deltas) and an end-to-end train + recover wall-clock are recorded
alongside into ``results/core_numeric.json``.

The ≥1.5× warm-step speedup is asserted at every scale — it measures
the code path, not the host's core count — with both medians recorded
so the baseline tracks each substrate it runs on.
"""

import statistics
import time
import tracemalloc

import numpy as np
import pytest

from repro.datasets import make_synthetic_mnist, partition_iid, train_test_split
from repro.fl import FederatedSimulation, ParticipationSchedule, VehicleClient
from repro.nn import SGD, mlp
from repro.storage import SignGradientStore
from repro.unlearning import SignRecoveryUnlearner
from repro.utils.flat import flatten_arrays, unflatten_vector
from repro.utils.rng import SeedSequenceTree

# Sized so the flat vector (~320k params, ~2.6 MB) dominates the cost
# of the batch-4 forward/backward — the regime the arena targets —
# while the unavoidable per-step transient (the input-gradient of the
# first Dense layer, batch x in_features) stays under the 1 MB guard.
IN_FEATURES = 20000
HIDDEN = 16
CLASSES = 10
BATCH = 4
LR = 1e-3
STEPS = 30
SEED = 99


def _workload():
    model = mlp(np.random.default_rng(SEED), IN_FEATURES, CLASSES, hidden=HIDDEN)
    rng = np.random.default_rng(SEED + 1)
    x = rng.normal(size=(BATCH, IN_FEATURES))
    y = rng.integers(0, CLASSES, size=BATCH)
    return model, x, y


def _legacy_step(model, w, x, y):
    """The pre-arena train step, arithmetic and copies reproduced."""
    arrays = unflatten_vector(w, model._param_shapes)
    for ref, new in zip(model._param_refs(), arrays):
        ref[...] = new
    logits = model.forward(x, training=True)
    _, dlogits = model.loss.forward(logits, y)
    grad = dlogits
    for layer in reversed(model.layers):
        grad = layer.backward(grad)
    flat = flatten_arrays(model._grad_refs())
    return w - LR * flat


def _arena_step(model, x, y, opt):
    """The arena train step: parameters live in the arena and are
    stepped in place — no flat-vector round-trip exists anymore."""
    _, gview = model.loss_and_flat_grad_view(x, y)
    return opt.step_(model.arena.w, gview)


def _median_seconds(step, warmup=3, rounds=STEPS):
    for _ in range(warmup):
        step()
    times = []
    for _ in range(rounds):
        start = time.perf_counter()
        step()
        times.append(time.perf_counter() - start)
    return statistics.median(times)


def _alloc_peak(step, warmup=3):
    """Peak tracemalloc delta of one warm invocation of ``step``."""
    for _ in range(warmup):
        step()
    tracemalloc.start()
    try:
        tracemalloc.reset_peak()
        before, _ = tracemalloc.get_traced_memory()
        step()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return int(peak - before)


def _train_and_recover_seconds():
    """End-to-end wall clock: a small federated run plus its recovery."""
    tree = SeedSequenceTree(SEED)
    data = make_synthetic_mnist(400, tree.rng("data"), image_size=8)
    train, _ = train_test_split(data, 0.2, tree.rng("split"))
    shards = partition_iid(train, 6, tree.rng("part"))
    clients = [
        VehicleClient(i, shards[i], tree.rng(f"c{i}"), batch_size=32)
        for i in range(6)
    ]
    model = mlp(tree.rng("model"), 64, 10, hidden=16)
    schedule = ParticipationSchedule.with_events(range(6), joins={2: 5})
    sim = FederatedSimulation(
        model,
        clients,
        2e-3,
        schedule=schedule,
        gradient_store=SignGradientStore(),
    )
    start = time.perf_counter()
    record = sim.run(15)
    train_seconds = time.perf_counter() - start
    start = time.perf_counter()
    SignRecoveryUnlearner(refresh_period=4).unlearn(record, [2], model)
    recover_seconds = time.perf_counter() - start
    return train_seconds, recover_seconds


@pytest.mark.benchmark(group="core")
def test_warm_step_speedup_and_allocations(benchmark, save_result):
    """Arena warm step must beat the legacy-emulated step by ≥1.5×."""
    model, x, y = _workload()
    d = model.num_params
    opt = SGD(LR)

    legacy_state = {"w": model.get_flat_params()}

    def legacy():
        legacy_state["w"] = _legacy_step(model, legacy_state["w"], x, y)

    def arena():
        _arena_step(model, x, y, opt)

    legacy_seconds = _median_seconds(legacy)
    legacy_alloc = _alloc_peak(legacy)
    arena_alloc = _alloc_peak(arena)

    def arena_run():
        return _median_seconds(arena, warmup=0)

    arena_seconds = benchmark.pedantic(arena_run, rounds=1, iterations=1)
    speedup = legacy_seconds / max(arena_seconds, 1e-12)

    train_seconds, recover_seconds = _train_and_recover_seconds()

    save_result(
        "core_numeric",
        {
            "model_params": int(d),
            "flat_vector_bytes": int(d * 8),
            "batch_size": BATCH,
            "steps_timed": STEPS,
            "legacy_step_seconds_median": legacy_seconds,
            "arena_step_seconds_median": arena_seconds,
            "warm_step_speedup": speedup,
            "legacy_step_alloc_peak_bytes": legacy_alloc,
            "arena_step_alloc_peak_bytes": arena_alloc,
            "train_seconds": train_seconds,
            "recover_seconds": recover_seconds,
        },
    )

    # The legacy path materializes several full flat vectors per step;
    # the arena path allocates (almost) nothing once warm.
    assert legacy_alloc > d * 8
    assert arena_alloc < 1024 * 1024
    assert speedup >= 1.5, (
        f"warm-step speedup {speedup:.2f}x below the 1.5x floor "
        f"(legacy {legacy_seconds * 1e3:.2f} ms, arena {arena_seconds * 1e3:.2f} ms)"
    )
