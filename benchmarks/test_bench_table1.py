"""Benchmark: regenerate Table I (post-unlearning accuracy, all methods).

Paper reference (Table I):

    MNIST : retrain 0.873 | fedrecover 0.869 | fedrecovery 0.825 | ours 0.859
    GTSRB : retrain 0.837 | fedrecover 0.766 | fedrecovery 0.702 | ours 0.747

Reproduced shape assertions: the paper's method (a) recovers most of
the trained model's accuracy using only 2-bit directions and no client
help, (b) beats FedRecovery, and (c) sits at or below the
full-gradient, client-assisted methods.
"""

import pytest

from repro.eval.experiments import run_table1


@pytest.mark.benchmark(group="table1")
def test_table1(benchmark, scale, save_result):
    result = benchmark.pedantic(
        lambda: run_table1(scale=scale), rounds=1, iterations=1
    )
    save_result("table1", result)
    for dataset, row in result["measured"].items():
        trained = row["trained"]
        # (a) most of the accuracy is recovered, server-only.
        assert row["ours"] > 0.75 * trained, (dataset, row)
        assert row["ours_client_calls"] == 0
        # (b) better than the approximate-unlearning baseline.
        assert row["ours"] >= row["fedrecovery"] - 0.02, (dataset, row)
        # (c) the expensive exact methods stay at least as good
        #     (small tolerance: they are within noise of each other).
        assert row["retrain"] >= row["ours"] - 0.05, (dataset, row)
