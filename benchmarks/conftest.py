"""Benchmark fixtures.

Experiment benchmarks run each table/figure regeneration exactly once
(``benchmark.pedantic(rounds=1)``) — the measured quantity is the
wall-clock cost of reproducing that artifact at the selected scale —
and write the result record to ``benchmarks/results/<name>.json`` so
EXPERIMENTS.md can be refreshed from the same source.

The whole benchmark session runs with telemetry enabled (registry
only, no event sinks), and every saved record embeds the registry
snapshot under a ``telemetry`` key — so each ``results/*.json`` gains
a stable metrics schema (``counters`` / ``gauges`` / ``histograms``,
names documented in ``docs/METRICS.md``).  The snapshot is cumulative
across the session: a record reflects every run up to its save point.

Scale: ``REPRO_SCALE`` env var; defaults to ``ci`` (minutes for the
whole suite).  Use ``REPRO_SCALE=smoke`` for a fast sanity pass or
``REPRO_SCALE=paper`` for the full n=100/CNN setting.
"""

from __future__ import annotations

import os

import pytest

from repro.eval.config import current_scale
from repro.telemetry import Telemetry, set_telemetry
from repro.utils.serialization import save_json

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def scale() -> str:
    return current_scale(default="ci")


@pytest.fixture(scope="session", autouse=True)
def telemetry():
    """Session-wide metrics aggregation for every benchmark run."""
    instance = Telemetry()
    previous = set_telemetry(instance)
    yield instance
    set_telemetry(previous)


@pytest.fixture(scope="session")
def save_result(telemetry):
    """Writer for experiment result records (telemetry snapshot attached)."""

    def _save(name: str, record: dict) -> None:
        record = dict(record)
        record["telemetry"] = telemetry.registry.snapshot()
        save_json(os.path.join(RESULTS_DIR, f"{name}.json"), record)

    return _save
