"""Benchmark fixtures.

Experiment benchmarks run each table/figure regeneration exactly once
(``benchmark.pedantic(rounds=1)``) — the measured quantity is the
wall-clock cost of reproducing that artifact at the selected scale —
and write the result record to ``benchmarks/results/<name>.json`` so
EXPERIMENTS.md can be refreshed from the same source.

Scale: ``REPRO_SCALE`` env var; defaults to ``ci`` (minutes for the
whole suite).  Use ``REPRO_SCALE=smoke`` for a fast sanity pass or
``REPRO_SCALE=paper`` for the full n=100/CNN setting.
"""

from __future__ import annotations

import os

import pytest

from repro.eval.config import current_scale
from repro.utils.serialization import save_json

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def scale() -> str:
    return current_scale(default="ci")


@pytest.fixture(scope="session")
def save_result():
    """Writer for experiment result records."""

    def _save(name: str, record: dict) -> None:
        save_json(os.path.join(RESULTS_DIR, f"{name}.json"), record)

    return _save
