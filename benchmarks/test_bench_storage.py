"""Benchmark: the §IV storage claim ("spare approximately 95 % of
storage overhead") measured on a real training record, plus codec
throughput micro-benchmarks.
"""

import numpy as np
import pytest

from repro.eval.experiments import run_storage
from repro.storage import decode_gradient, encode_gradient


@pytest.mark.benchmark(group="storage")
def test_storage_claim(benchmark, scale, save_result):
    result = benchmark.pedantic(lambda: run_storage(scale=scale), rounds=1, iterations=1)
    save_result("storage", result)
    # 2 bits vs 32 bits -> 93.75 % == "approximately 95 %".
    assert result["measured_savings"] > 0.93
    assert result["asymptotic_savings"] == pytest.approx(0.9375, abs=1e-3)


@pytest.mark.benchmark(group="storage-codec")
def test_encode_throughput(benchmark):
    rng = np.random.default_rng(0)
    gradient = rng.normal(size=1_000_000) * 0.01
    packed, length = benchmark(encode_gradient, gradient, 1e-6)
    assert length == gradient.size


@pytest.mark.benchmark(group="storage-codec")
def test_decode_throughput(benchmark):
    rng = np.random.default_rng(0)
    gradient = rng.normal(size=1_000_000) * 0.01
    packed, length = encode_gradient(gradient, 1e-6)
    decoded = benchmark(decode_gradient, packed, length)
    assert decoded.shape == (length,)
