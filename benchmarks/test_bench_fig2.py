"""Benchmark: regenerate Fig. 2 (recovered accuracy vs clip threshold L).

Paper reference: optimum at L = 1 with 86 % accuracy; smaller L slows
recovery (starved steps), larger L amplifies estimation error.

Reproduced shape: accuracy rises from the smallest L to an interior
optimum and falls again for the largest L.  The optimum's *location*
is substrate-dependent (measured and recorded); the rise-and-fall shape
is the assertion.
"""

import pytest

from repro.eval.experiments import run_fig2

L_VALUES = (0.01, 0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 50.0)


@pytest.mark.benchmark(group="fig2")
def test_fig2(benchmark, scale, save_result):
    result = benchmark.pedantic(
        lambda: run_fig2(scale=scale, l_values=L_VALUES), rounds=1, iterations=1
    )
    save_result("fig2", result)
    points = result["measured"]
    accs = [p["accuracy"] for p in points]
    best_idx = max(range(len(accs)), key=lambda i: accs[i])
    # Interior optimum: strictly better than both extremes.
    assert accs[best_idx] > accs[0] + 0.02, points
    assert accs[best_idx] > accs[-1] + 0.02, points
    # Small L starves the recovery step (paper: "restricts the step size
    # during model updates, which will slow the model's recovery").
    assert accs[0] < max(accs) - 0.1, points
