"""Erasure-daemon SLO harness (``make bench-slo``).

One training run, then three seeded open-loop load phases against the
:class:`~repro.serving.ErasureDaemon` fronting the service:

1. ``steady`` — nominal mixed traffic (fresh singles/batches plus
   idempotent retries).  Asserted: ≥ 200 served req/s and a bounded
   p99 latency.
2. ``burst`` — a mass-GDPR burst of fresh erasures several times the
   queue capacity.  Asserted: nonzero shed rate (admission control
   rejects the excess instead of queueing without bound) and the queue
   never exceeds its capacity.
3. ``recover`` — nominal traffic again.  Asserted: shedding stops and
   the breaker is closed (the daemon recovered from the burst).

A fourth, separately trained record checks the deadline contract: a
request whose deadline expires aborts with a typed error, and the next
request for the same vehicle recovers parameters **byte-identical** to
a cache-less cold replay — the aborted replay left the prefix cache
either untouched or holding only committed round snapshots.

Per-phase p50/p95/p99 latency, req/s, and shed-rate rows land in
``results/slo.json`` with the session telemetry snapshot attached.
"""

import pytest

from repro.datasets import make_synthetic_mnist, partition_iid
from repro.fl import FederatedSimulation, ParticipationSchedule, VehicleClient
from repro.nn import mlp
from repro.serving import (
    DeadlineExceededError,
    ErasureDaemon,
    LoadGenerator,
    mass_gdpr_schedule,
    steady_schedule,
)
from repro.storage import SignGradientStore
from repro.unlearning import SignRecoveryUnlearner, UnlearningService
from repro.utils.rng import SeedSequenceTree

NUM_CLIENTS = 24
NUM_ROUNDS = 12
IMAGE = 8
FEATURES = IMAGE * IMAGE
SEED = 2024
CLIP = 5.0
#: Erasable late joiners: erasing one replays only from its join round,
#: and the service's prefix cache amortizes the shared prefix across
#: the stream — the data path the daemon serves under load.
ERASABLE = list(range(6, NUM_CLIENTS))
JOINS = {cid: 2 + (i % 9) for i, cid in enumerate(ERASABLE)}

RATE = 400.0
DURATION = 1.0
CAPACITY = 4
WORKERS = 2
BURST = 16

#: SLO floors/ceilings asserted below.
MIN_OK_PER_SECOND = 200.0
MAX_STEADY_P99 = 5.0
MAX_BURST_P99 = 60.0


def build_record(seed=SEED):
    tree = SeedSequenceTree(seed)
    data = make_synthetic_mnist(300, tree.rng("data"), image_size=IMAGE)
    shards = partition_iid(data, NUM_CLIENTS, tree.rng("part"))
    clients = [
        VehicleClient(i, shards[i], tree.rng(f"c{i}"), batch_size=16)
        for i in range(NUM_CLIENTS)
    ]
    model = mlp(tree.rng("model"), FEATURES, 10, hidden=8)
    schedule = ParticipationSchedule.with_events(range(NUM_CLIENTS), joins=JOINS)
    sim = FederatedSimulation(
        model,
        clients,
        2e-3,
        schedule=schedule,
        gradient_store=SignGradientStore(),
    )
    return sim.run(NUM_ROUNDS), model


def build_service(record, model):
    return UnlearningService(record=record, model=model, clip_threshold=CLIP)


def run_phases(service):
    """The three-phase load story; returns (phase reports, daemon)."""
    daemon = ErasureDaemon(service, capacity=CAPACITY, workers=WORKERS).start()
    generator = LoadGenerator(daemon)
    try:
        steady = generator.run(
            steady_schedule(
                RATE, DURATION, ERASABLE[:4], seed=SEED,
                duplicate_fraction=0.9, key_prefix="steady",
            ),
            label="steady",
        )
        burst = generator.run(
            mass_gdpr_schedule(
                100.0, DURATION, BURST, ERASABLE[4:16], seed=SEED + 1,
                key_prefix="burst",
            ),
            label="burst",
        )
        recover = generator.run(
            steady_schedule(
                RATE, DURATION, ERASABLE[16:], seed=SEED + 2,
                duplicate_fraction=0.9, key_prefix="recover",
            ),
            label="recover",
        )
    finally:
        daemon.stop(mode="drain")
    return [steady, burst, recover], daemon


@pytest.mark.benchmark(group="slo")
def test_daemon_slo_under_load(benchmark, save_result):
    record, model = build_record()
    service = build_service(record, model)
    (phases, daemon) = benchmark.pedantic(
        lambda: run_phases(service), rounds=1
    )
    steady, burst, recover = phases

    # Phase 1: sustained throughput with a bounded tail.
    assert steady.counts.get("ok", 0) / steady.duration_seconds >= MIN_OK_PER_SECOND
    assert steady.latency["p99"] <= MAX_STEADY_P99
    assert steady.shed_rate == 0.0

    # Phase 2: the burst overwhelms a capacity-4 queue — admission
    # control must shed, and the daemon must not crash or queue
    # without bound (the queue is structurally capped at CAPACITY).
    assert burst.shed_rate > 0.0
    assert burst.counts.get("rejected", 0) > 0
    assert burst.latency["p99"] <= MAX_BURST_P99

    # Phase 3: the daemon recovered — no shedding, breaker closed,
    # queue drained.
    assert recover.shed_rate == 0.0
    status = daemon.status()
    assert status["queue_depth"] == 0
    assert status["breaker_state"] == "closed"
    assert status["counts"]["error"] == 0

    save_result(
        "slo",
        {
            "experiment": "slo",
            "seed": SEED,
            "rate": RATE,
            "capacity": CAPACITY,
            "workers": WORKERS,
            "burst_size": BURST,
            "phases": [p.as_dict() for p in phases],
            "daemon": {
                **{k: v for k, v in status.items() if k != "breaker_state"},
                "breaker_state": str(status["breaker_state"]),
            },
            "breaker_transitions": list(daemon.breaker.transitions),
        },
    )


@pytest.mark.benchmark(group="slo")
def test_deadline_abort_leaves_cache_byte_identical(benchmark):
    record, model = build_record(seed=7)
    target = ERASABLE[0]
    # Cache-less cold reference, computed before the service purges
    # anything from this record.
    reference = SignRecoveryUnlearner(clip_threshold=CLIP).unlearn(
        record, [target], model
    )
    service = build_service(record, model)
    daemon = ErasureDaemon(service, capacity=4, workers=1).start()
    try:
        def abort_then_serve():
            # A 1 ms deadline is admitted but expires while queued or
            # between replay rounds — either way the abort lands on
            # committed state only, and the retry serves cleanly.
            try:
                return daemon.request(target, deadline=0.001)
            except DeadlineExceededError:
                return daemon.request(target)

        response = benchmark.pedantic(abort_then_serve, rounds=1)
    finally:
        daemon.stop(mode="drain")
    assert response.status == "ok"
    assert response.params.tobytes() == reference.params.tobytes()
    assert response.outcomes[0].result.stats == reference.stats
