"""Benchmarks: extension experiments beyond the paper's evaluation.

- **detection**: close the "once the attacker is detected" loop from the
  stored record alone (precision/recall vs ground truth).
- **verification**: canary membership-inference check that forgetting
  actually removes memorization.
- **noniid**: recovery robustness under Dirichlet label skew.
"""

import pytest

from repro.eval.experiments import run_detection, run_noniid, run_verification


@pytest.mark.benchmark(group="extensions")
def test_detection(benchmark, scale, save_result):
    result = benchmark.pedantic(lambda: run_detection(scale=scale), rounds=1, iterations=1)
    save_result("detection", result)
    m = result["measured"]
    # At ci scale the sign-disagreement detector is exact; demand it
    # catches at least half the attackers without drowning in false
    # positives.  The smoke-scale run (a few rounds on a tiny shard)
    # leaves no attack signal to detect — record the numbers, skip the
    # signal-strength assertions.
    if scale != "smoke":
        assert m["recall"] >= 0.5, m
        assert m["precision"] >= 0.5, m
        if "asr_after_recover" in m:
            assert m["asr_after_recover"] < m["asr_before"], m


@pytest.mark.benchmark(group="extensions")
def test_verification(benchmark, scale, save_result):
    result = benchmark.pedantic(lambda: run_verification(scale=scale), rounds=1, iterations=1)
    save_result("verification", result)
    m = result["measured"]
    # Memorization is visible before, reduced after, and provably gone
    # at the backtracked point.
    assert m["advantage_before"] > 0.55, m
    assert m["advantage_after"] < m["advantage_before"], m
    assert abs(m["advantage_backtracked"] - 0.5) < 0.1, m


@pytest.mark.benchmark(group="extensions")
def test_noniid(benchmark, scale, save_result):
    result = benchmark.pedantic(
        lambda: run_noniid(scale=scale, alphas=(100.0, 0.3)), rounds=1, iterations=1
    )
    save_result("noniid", result)
    m = result["measured"]
    # Recovery still functions under heavy skew (no collapse to chance).
    assert m["alpha=0.3"]["recovered"] > 0.25, m
    # And near-IID recovery is at least as good as the skewed one.
    assert m["alpha=100.0"]["recovered"] >= m["alpha=0.3"]["recovered"] - 0.05, m


@pytest.mark.benchmark(group="extensions")
def test_cost(benchmark, scale, save_result):
    from repro.eval.experiments import run_cost

    result = benchmark.pedantic(lambda: run_cost(scale=scale), rounds=1, iterations=1)
    save_result("cost", result)
    m = result["measured"]
    # The paper's cost story: ours needs no vehicle work at all and an
    # order of magnitude less server storage than full-gradient methods.
    assert m["ours"]["client_gradient_calls"] == 0
    assert m["ours"]["upload_bytes"] == 0
    assert m["ours"]["server_storage_bytes"] * 10 < m["fedrecover"]["server_storage_bytes"]
    assert m["retrain"]["client_gradient_calls"] > m["fedrecover"]["client_gradient_calls"] > 0


@pytest.mark.benchmark(group="extensions")
def test_robust_agg(benchmark, scale, save_result):
    from repro.eval.experiments import run_robust_agg

    result = benchmark.pedantic(lambda: run_robust_agg(scale=scale), rounds=1, iterations=1)
    save_result("robust_agg", result)
    m = result["measured"]
    # Unlearning composes with robust aggregation: under every rule the
    # recovery restores a large fraction of the trained accuracy.
    for rule, row in m.items():
        assert row["recovered"] > 0.6 * row["trained"], (rule, row)


@pytest.mark.benchmark(group="extensions")
def test_recovery_trace(benchmark, scale, save_result):
    from repro.eval.experiments import run_recovery_trace

    result = benchmark.pedantic(
        lambda: run_recovery_trace(scale=scale), rounds=1, iterations=1
    )
    save_result("recovery_trace", result)
    trace = result["measured"]
    assert len(trace) >= 3
    # Recovery climbs: the final point clearly beats the backtracked start.
    assert result["final_recovered_accuracy"] > result["backtracked_accuracy"] + 0.1
    # And the second half of the trace is (weakly) better than the first.
    accs = [p["accuracy"] for p in trace]
    half = len(accs) // 2
    assert sum(accs[half:]) / len(accs[half:]) >= sum(accs[:half]) / half - 0.05


@pytest.mark.benchmark(group="extensions")
def test_communication(benchmark, scale, save_result):
    from repro.eval.experiments import run_communication

    result = benchmark.pedantic(
        lambda: run_communication(scale=scale), rounds=1, iterations=1
    )
    save_result("communication", result)
    m = result["measured"]
    for model in ("mnist_cnn", "gtsrb_cnn"):
        full = m[f"{model}/float32"]
        sign = m[f"{model}/sign2bit"]
        # Sign uplink fits many more rounds into one coverage transit.
        assert sign["rounds_per_transit"] > 2 * full["rounds_per_transit"]
        assert sign["upload_bytes"] * 15 < full["upload_bytes"]
