"""Tracked fused replay-forest baseline: speedup grows with batch size.

One training run shaped like a real serving backlog — the oldest
forgotten vehicle joined early (round 5 of 120), the other 31 forget
vehicles join packed into the final round — then batches of K queued
erasure requests served two ways: K cold cache-less replays, and one
``UnlearningService.handle_erasure_batch_fused`` call (one shared
execution tree; ``docs/REPLAY.md``).  Byte identity between the two
paths is a hard assertion at every K.

The amortization is determined by replay-round counts, not the
substrate: at K=32 the cold path replays 32 × 115 = 3680 member-rounds
while the tree executes the 114-round trunk once plus a wide one-round
fan of forked branches (~146 node-rounds) — so the ≥10× speedup at
K=32, and speedup(32) ≥ speedup(4), are asserted unconditionally.
Per-batch rows (wall times, speedup, node-vs-member rounds, forks,
fusion width, warm-pass hit depth) land in ``results/forest.json``
with the session telemetry snapshot attached.
"""

import copy
import time

import pytest

from repro.datasets import make_synthetic_mnist, partition_iid
from repro.fl import FederatedSimulation, ParticipationSchedule, VehicleClient
from repro.nn import mlp
from repro.storage import SignGradientStore
from repro.unlearning import SignRecoveryUnlearner, UnlearningService
from repro.utils.rng import SeedSequenceTree

NUM_CLIENTS = 40
NUM_ROUNDS = 120
IMAGE = 8
FEATURES = IMAGE * IMAGE
SEED = 2024
CLIP = 5.0

#: The erasure backlog: vehicle 8 joined early (the long shared trunk),
#: vehicles 9..39 join in the last round (short private tails), so the
#: tree's sharing grows with the batch size.
ANCHOR = 8
TAIL = list(range(9, 40))      # join round 119
FORGET_POPULATION = [ANCHOR] + TAIL
JOINS = {ANCHOR: 5, **{c: NUM_ROUNDS - 1 for c in TAIL}}
BATCH_SIZES = [4, 32]


def build_record():
    tree = SeedSequenceTree(SEED)
    data = make_synthetic_mnist(400, tree.rng("data"), image_size=IMAGE)
    shards = partition_iid(data, NUM_CLIENTS, tree.rng("part"))
    clients = [
        VehicleClient(i, shards[i], tree.rng(f"c{i}"), batch_size=16)
        for i in range(NUM_CLIENTS)
    ]
    model = mlp(tree.rng("model"), FEATURES, 10, hidden=8)
    schedule = ParticipationSchedule.with_events(range(NUM_CLIENTS), joins=JOINS)
    sim = FederatedSimulation(
        model,
        clients,
        2e-3,
        schedule=schedule,
        gradient_store=SignGradientStore(),
    )
    return sim.run(NUM_ROUNDS), model


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


@pytest.mark.benchmark(group="forest")
def test_fused_forest_speedup_grows_with_batch(benchmark, save_result):
    record, model = build_record()
    rows = []
    speedups = {}

    for batch_size in BATCH_SIZES:
        batch = FORGET_POPULATION[:batch_size]

        # Cold reference: every request replayed cache-less from scratch
        # on the pristine record (read-only).
        def cold_pass():
            results = []
            forget = []
            for cid in batch:
                forget.append(cid)
                unlearner = SignRecoveryUnlearner(clip_threshold=CLIP)
                results.append(unlearner.unlearn(record, list(forget), model))
            return results

        cold_results, cold_seconds = _timed(cold_pass)
        cold_rounds = sum(r.rounds_replayed for r in cold_results)

        # Fused: the same requests through one shared execution tree.
        # Each batch size gets its own record copy — committing a batch
        # purges the forgotten vehicles' stored gradients.
        service = UnlearningService(
            record=copy.deepcopy(record), model=model, clip_threshold=CLIP
        )

        report, fused_seconds = _timed(
            lambda: service.handle_erasure_batch_fused(batch)
        )

        # Hard contract: fusion never changes a bit, at any batch size.
        assert report.errors == [None] * batch_size
        for outcome, cold in zip(report.outcomes, cold_results):
            assert outcome.params.tobytes() == cold.params.tobytes()
            assert outcome.result.stats == cold.stats

        # Warm repeat on a fresh service sharing the forest: every
        # request resumes at full depth (hit depth == its replay span).
        warm_service = UnlearningService(
            record=service.record,
            model=model,
            clip_threshold=CLIP,
            _prefix_cache=service.prefix_cache,
        )

        def warm_pass():
            return warm_service.handle_erasure_batch_fused(batch)

        if batch_size == max(BATCH_SIZES):
            warm_report = benchmark.pedantic(warm_pass, rounds=1, iterations=1)
        else:
            warm_report = warm_pass()
        assert warm_report.stats.executed_node_rounds == 0

        stats = report.stats
        speedup = cold_seconds / max(fused_seconds, 1e-9)
        speedups[batch_size] = speedup
        rows.append(
            {
                "batch_size": batch_size,
                "cold_seconds": cold_seconds,
                "fused_seconds": fused_seconds,
                "speedup": speedup,
                "cold_rounds_replayed": cold_rounds,
                "executed_node_rounds": stats.executed_node_rounds,
                "member_rounds": stats.member_rounds,
                "shared_rounds": stats.shared_rounds,
                "forks": stats.forks,
                "fusion_width": stats.peak_branches,
                "forest_nodes": service.prefix_cache.node_count,
                "warm_hit_depth_rounds": [
                    o.cached_prefix_rounds for o in warm_report.outcomes
                ],
            }
        )

    save_result(
        "forest",
        {
            "clients": NUM_CLIENTS,
            "rounds": NUM_ROUNDS,
            "anchor_join_round": JOINS[ANCHOR],
            "tail_join_rounds": sorted({JOINS[c] for c in FORGET_POPULATION[1:]}),
            "batches": rows,
        },
    )

    # Fixed by the join schedule, not the substrate: the tree executes
    # ~146 node-rounds where the cold path replays 3680.
    assert speedups[32] >= 10.0
    assert speedups[32] >= speedups[4]
