"""Micro-benchmarks of the performance-critical primitives.

These are classic pytest-benchmark timings (many rounds): conv
forward/backward, a full FL round, FedAvg aggregation, the L-BFGS
Hessian-vector product, recovery-round estimation, and the sign codec
(per-vector and batched whole-round encoding).
"""

import numpy as np
import pytest

from repro.datasets import ArrayDataset
from repro.fl import VehicleClient, fedavg
from repro.nn import mnist_cnn
from repro.storage import encode_round, pack_signs, ternarize, unpack_signs
from repro.unlearning.estimator import GradientEstimator
from repro.unlearning.lbfgs import LbfgsBuffer


@pytest.fixture(scope="module")
def cnn():
    return mnist_cnn(np.random.default_rng(0))


@pytest.fixture(scope="module")
def batch():
    rng = np.random.default_rng(1)
    return rng.random((128, 1, 28, 28)), rng.integers(0, 10, size=128)


@pytest.mark.benchmark(group="micro-nn")
def test_cnn_forward(benchmark, cnn, batch):
    x, _ = batch
    out = benchmark(cnn.forward, x, False)
    assert out.shape == (128, 10)


@pytest.mark.benchmark(group="micro-nn")
def test_cnn_forward_backward(benchmark, cnn, batch):
    x, y = batch
    loss, grad = benchmark(cnn.loss_and_flat_grad, x, y)
    assert np.isfinite(loss)


@pytest.mark.benchmark(group="micro-fl")
def test_client_round(benchmark, cnn, batch):
    x, y = batch
    ds = ArrayDataset(x=x, y=y, num_classes=10)
    client = VehicleClient(0, ds, np.random.default_rng(2), batch_size=128)
    params = cnn.get_flat_params()
    grad = benchmark(client.compute_update, params, cnn)
    assert grad.shape == (cnn.num_params,)


@pytest.mark.benchmark(group="micro-fl")
def test_fedavg_100_clients(benchmark):
    rng = np.random.default_rng(3)
    grads = [rng.normal(size=52138) for _ in range(100)]
    weights = list(rng.integers(100, 300, size=100))
    out = benchmark(fedavg, grads, weights)
    assert out.shape == (52138,)


@pytest.mark.benchmark(group="micro-codec")
def test_pack_signs_single(benchmark):
    """One client's ternarize + 2-bit pack at paper-profile model size."""
    rng = np.random.default_rng(6)
    signs = ternarize(rng.normal(size=52138), 0.1)
    packed, length = benchmark(pack_signs, signs)
    assert length == 52138


@pytest.mark.benchmark(group="micro-codec")
def test_unpack_signs_single(benchmark):
    rng = np.random.default_rng(7)
    signs = ternarize(rng.normal(size=52138), 0.1)
    packed, length = pack_signs(signs)
    out = benchmark(unpack_signs, packed, length)
    np.testing.assert_array_equal(out, signs)


@pytest.mark.benchmark(group="micro-codec")
def test_encode_round_batched_20_clients(benchmark):
    """One round's whole-cohort ternarize + pack — the
    SignGradientStore.put_round fast path."""
    rng = np.random.default_rng(8)
    gradients = rng.normal(size=(20, 52138))
    packed, length = benchmark(encode_round, gradients, 0.1)
    assert packed.shape[0] == 20 and length == 52138


@pytest.mark.benchmark(group="micro-unlearn")
def test_lbfgs_hvp(benchmark):
    rng = np.random.default_rng(4)
    d = 52138  # paper-profile MNIST CNN size
    buf = LbfgsBuffer(buffer_size=2)
    for _ in range(2):
        s = rng.normal(size=d)
        buf.add_pair(s, s + 0.1 * rng.normal(size=d))
    v = rng.normal(size=d)
    out = benchmark(buf.hvp, v)
    assert out.shape == (d,)


@pytest.mark.benchmark(group="micro-unlearn")
def test_estimation_round(benchmark):
    """One client's Eq. 6 + Eq. 7 estimate at paper-profile model size."""
    rng = np.random.default_rng(5)
    d = 52138
    est = GradientEstimator(buffer_size=2, clip_threshold=1.0)
    for _ in range(2):
        s = rng.normal(size=d)
        est.seed_pair(s, s)
    stored = rng.choice([-1.0, 0.0, 1.0], size=d)
    w_bar = rng.normal(size=d)
    w = w_bar + 0.01 * rng.normal(size=d)
    out = benchmark(est.estimate, stored, w_bar, w)
    assert (np.abs(out) <= 1.0).all()
