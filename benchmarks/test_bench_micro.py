"""Micro-benchmarks of the performance-critical primitives.

These are classic pytest-benchmark timings (many rounds): conv
forward/backward, a full FL round, FedAvg aggregation, the L-BFGS
Hessian-vector product, and recovery-round estimation.
"""

import numpy as np
import pytest

from repro.datasets import ArrayDataset
from repro.fl import VehicleClient, fedavg
from repro.nn import mnist_cnn
from repro.unlearning.estimator import GradientEstimator
from repro.unlearning.lbfgs import LbfgsBuffer


@pytest.fixture(scope="module")
def cnn():
    return mnist_cnn(np.random.default_rng(0))


@pytest.fixture(scope="module")
def batch():
    rng = np.random.default_rng(1)
    return rng.random((128, 1, 28, 28)), rng.integers(0, 10, size=128)


@pytest.mark.benchmark(group="micro-nn")
def test_cnn_forward(benchmark, cnn, batch):
    x, _ = batch
    out = benchmark(cnn.forward, x, False)
    assert out.shape == (128, 10)


@pytest.mark.benchmark(group="micro-nn")
def test_cnn_forward_backward(benchmark, cnn, batch):
    x, y = batch
    loss, grad = benchmark(cnn.loss_and_flat_grad, x, y)
    assert np.isfinite(loss)


@pytest.mark.benchmark(group="micro-fl")
def test_client_round(benchmark, cnn, batch):
    x, y = batch
    ds = ArrayDataset(x=x, y=y, num_classes=10)
    client = VehicleClient(0, ds, np.random.default_rng(2), batch_size=128)
    params = cnn.get_flat_params()
    grad = benchmark(client.compute_update, params, cnn)
    assert grad.shape == (cnn.num_params,)


@pytest.mark.benchmark(group="micro-fl")
def test_fedavg_100_clients(benchmark):
    rng = np.random.default_rng(3)
    grads = [rng.normal(size=52138) for _ in range(100)]
    weights = list(rng.integers(100, 300, size=100))
    out = benchmark(fedavg, grads, weights)
    assert out.shape == (52138,)


@pytest.mark.benchmark(group="micro-unlearn")
def test_lbfgs_hvp(benchmark):
    rng = np.random.default_rng(4)
    d = 52138  # paper-profile MNIST CNN size
    buf = LbfgsBuffer(buffer_size=2)
    for _ in range(2):
        s = rng.normal(size=d)
        buf.add_pair(s, s + 0.1 * rng.normal(size=d))
    v = rng.normal(size=d)
    out = benchmark(buf.hvp, v)
    assert out.shape == (d,)


@pytest.mark.benchmark(group="micro-unlearn")
def test_estimation_round(benchmark):
    """One client's Eq. 6 + Eq. 7 estimate at paper-profile model size."""
    rng = np.random.default_rng(5)
    d = 52138
    est = GradientEstimator(buffer_size=2, clip_threshold=1.0)
    for _ in range(2):
        s = rng.normal(size=d)
        est.seed_pair(s, s)
    stored = rng.choice([-1.0, 0.0, 1.0], size=d)
    w_bar = rng.normal(size=d)
    w = w_bar + 0.01 * rng.normal(size=d)
    out = benchmark(est.estimate, stored, w_bar, w)
    assert (np.abs(out) <= 1.0).all()
