"""Benchmarks: ablations of the design decisions DESIGN.md §6 calls out.

- clipping (Eq. 7) on/off,
- vector-pair refresh period (paper: every 21 rounds),
- L-BFGS buffer size s (paper: 2),
- sign-direction vs full-gradient recovery (the storage/accuracy trade),
- robustness to training-time dropouts.
"""

import pytest

from repro.eval.experiments import (
    run_ablation_buffer,
    run_ablation_clipping,
    run_ablation_dropout,
    run_ablation_refresh,
    run_ablation_sign,
)


@pytest.mark.benchmark(group="ablations")
def test_ablation_clipping(benchmark, scale, save_result):
    result = benchmark.pedantic(
        lambda: run_ablation_clipping(scale=scale), rounds=1, iterations=1
    )
    save_result("ablation_clipping", result)
    m = result["measured"]
    # Clipping at the tuned L must beat (or match) fully unclipped —
    # Eq. 7 is what bounds estimation error.
    assert m["clipped_tuned_L"]["accuracy"] >= m["unclipped"]["accuracy"] - 0.02, m


@pytest.mark.benchmark(group="ablations")
def test_ablation_refresh(benchmark, scale, save_result):
    result = benchmark.pedantic(
        lambda: run_ablation_refresh(scale=scale), rounds=1, iterations=1
    )
    save_result("ablation_refresh", result)
    m = result["measured"]
    assert all(v["accuracy"] > 0.3 for v in m.values()), m


@pytest.mark.benchmark(group="ablations")
def test_ablation_buffer(benchmark, scale, save_result):
    result = benchmark.pedantic(
        lambda: run_ablation_buffer(scale=scale), rounds=1, iterations=1
    )
    save_result("ablation_buffer", result)
    m = result["measured"]
    assert "s=2" in m  # the paper's setting is covered
    assert all(v["accuracy"] > 0.3 for v in m.values()), m


@pytest.mark.benchmark(group="ablations")
def test_ablation_sign_vs_full(benchmark, scale, save_result):
    result = benchmark.pedantic(
        lambda: run_ablation_sign(scale=scale), rounds=1, iterations=1
    )
    save_result("ablation_sign", result)
    m = result["measured"]
    # The trade: sign storage is >10x smaller; accuracy within a modest
    # margin of full-gradient recovery (the paper's headline).
    assert m["sign_store"]["gradient_bytes"] * 10 < m["full_store"]["gradient_bytes"]
    assert m["sign_store"]["accuracy"] > m["full_store"]["accuracy"] - 0.15, m


@pytest.mark.benchmark(group="ablations")
def test_ablation_dropout(benchmark, scale, save_result):
    result = benchmark.pedantic(
        lambda: run_ablation_dropout(scale=scale), rounds=1, iterations=1
    )
    save_result("ablation_dropout", result)
    m = result["measured"]
    clean = m["dropout=0.0"]["accuracy"]
    # Server-only recovery degrades gracefully under 30 % dropouts.
    assert m["dropout=0.3"]["accuracy"] > clean - 0.25, m


@pytest.mark.benchmark(group="ablations")
def test_ablation_hessian(benchmark, scale, save_result):
    """Reproduces the §II claim: DeltaGrad's shared Hessian is
    ineffective for FL recovery compared to per-client Hessians."""
    from repro.eval.experiments import run_ablation_hessian

    result = benchmark.pedantic(
        lambda: run_ablation_hessian(scale=scale), rounds=1, iterations=1
    )
    save_result("ablation_hessian", result)
    m = result["measured"]
    assert (
        m["per_client_hessian"]["accuracy"]
        > m["shared_hessian_deltagrad"]["accuracy"] + 0.05
    ), m
