"""Benchmark: regenerate Fig. 1 (attack success rate through the
unlearning pipeline, label-flip and backdoor on MNIST).

Paper reference: before unlearning 56 % (label flip) / 41 % (backdoor);
after forgetting < 1 %; no obvious increase after recovery.

Reproduced shape: ASR collapses to (at or below) the 10-class chance
level after forgetting and does not climb back above a small margin of
that level after recovery, while clean accuracy is restored.
"""

import pytest

from repro.eval.experiments import run_fig1

CHANCE = 0.10  # 10-class tasks


@pytest.mark.benchmark(group="fig1")
def test_fig1(benchmark, scale, save_result):
    result = benchmark.pedantic(lambda: run_fig1(scale=scale), rounds=1, iterations=1)
    save_result("fig1", result)
    for attack, row in result["measured"].items():
        assert row["asr_before"] > 0.25, (attack, row)
        assert row["asr_after_forget"] <= CHANCE + 0.05, (attack, row)
        # The recovery-quality claims need a model trained long enough
        # for the clean signal to dominate; the smoke-scale run only
        # checks the pipeline executes and the forget step lands.
        if scale == "smoke":
            continue
        # Recovery must not reintroduce the attack: far below the
        # pre-unlearning rate and near chance.
        assert row["asr_after_recover"] < row["asr_before"] / 2, (attack, row)
        assert row["asr_after_recover"] <= CHANCE + 0.10, (attack, row)
        # Clean accuracy is restored meaningfully above the forgetting point.
        assert row["accuracy_after_recover"] > row["accuracy_after_forget"], (attack, row)
