"""Tracked live-traffic (train + erase concurrently) baseline.

One seeded federated workload measured two ways:

1. **Stop-the-world baseline** — train the full horizon, then serve E
   erasure requests sequentially over the frozen record.  This is what
   the erasure requests actually cost when they arrive mid-training
   but must wait for the run to finish: ``t_train_solo + Σ t_erase_solo``.
   Each erasure replays from its vehicle's join round to the end of
   the record.

2. **Snapshot-isolated live path** — the identical workload wrapped in
   a :class:`~repro.fl.live.LiveTrainingSession`; the same E requests
   are submitted through an :class:`~repro.serving.ErasureDaemon`
   *while training runs*, each shortly after its vehicle joins (the
   IoV arrival pattern: a vehicle appears, uploads a few rounds, and
   invokes its right to be forgotten on the way out).  Each erasure
   pins a record snapshot at the current watermark, replays the short
   ``[join, watermark)`` window lock-free, and folds its counterfactual
   into the rounds trained past the watermark (exact ``replay`` merge).

The erasable vehicles' joins are staggered across the run — the same
layout ``python -m repro.eval serve`` uses — so both sides share
replay prefixes through the forest; the live win comes from replaying
``[join, watermark)`` instead of ``[join, end-of-record)`` and from
overlapping that replay with training.

Latency model (this host has a single CPU, so concurrency only pays
where waits release the GIL — same convention as
``test_bench_prefetch.py``):

- ``TRAIN_LATENCY_S`` between round arrivals, injected as paced round
  permits granted by a feeder thread — the stand-in for vehicle
  compute + upload collection (the wait happens *outside* the train
  gate, like the real inter-round idle);
- ``FETCH_LATENCY_S`` per replayed round, injected by wrapping the
  sign store's ``get_round`` — the stand-in for cold-archive reads.

Asserted claims (recorded in ``results/live.json``):

- aggregate throughput ≥ 2× the stop-the-world baseline;
- training wall clock degraded ≤ 25 % while erasures are in flight;
- the first committed merge is byte-identical to the sequential
  reference (train the same seed to the commit round, then unlearn).
"""

import threading
import time

import pytest

from repro.eval.config import config_for
from repro.eval.workloads import build_workload
from repro.fl import FederatedSimulation, LiveTrainingSession, ParticipationSchedule
from repro.serving import ErasureDaemon
from repro.storage import SignGradientStore
from repro.unlearning import SignRecoveryUnlearner, UnlearningService

#: Injected per-round training latency (client compute + upload wait).
TRAIN_LATENCY_S = 0.04
#: Injected per-round archive fetch latency during replay.  Kept under
#: the round latency: a live commit's gate hold is its *tail* replay,
#: and tail length ≈ phase-1 duration / round latency, so the training
#: stall per erasure shrinks with the fetch/train ratio — the bench's
#: ≤25 % degradation bound relies on that.
FETCH_LATENCY_S = 0.025

#: (rounds, erasure requests) per scale.
SIZES = {
    "smoke": (28, 5),
    "ci": (36, 6),
    "paper": (48, 8),
}


class ColdArchiveStore:
    """Read-through sign-store wrapper modelling a blocking round fetch.

    ``get_round`` sleeps — releasing the GIL exactly as a real device
    or network wait would — then delegates.  Writes and everything
    else pass through untouched, so training is unaffected and the
    decoded bytes are the wrapped store's bytes.
    """

    supports_bulk_round = True

    def __init__(self, inner, latency_s: float):
        self._inner = inner
        self._latency = latency_s

    def get_round(self, t):
        time.sleep(self._latency)
        return self._inner.get_round(t)

    def __getattr__(self, name):
        return getattr(self._inner, name)


def build_sim(scale, seed, rounds, clients, joins, fetch_latency=None):
    """Deterministic (config, workload, simulation) for one seed."""
    config = config_for(
        "mnist", scale, seed=seed, num_rounds=rounds, num_clients=clients
    )
    schedule = ParticipationSchedule.with_events(range(clients), joins=joins)
    workload = build_workload(config, schedule=schedule)
    store = SignGradientStore(delta=config.delta)
    if fetch_latency:
        store = ColdArchiveStore(store, fetch_latency)
    sim = FederatedSimulation(
        model=workload.model,
        clients=workload.clients,
        learning_rate=config.learning_rate,
        schedule=workload.schedule,
        gradient_store=store,
        aggregator=config.aggregator,
    )
    return config, workload, sim


def make_service(config, record, model):
    return UnlearningService(
        record=record,
        model=model,
        clip_threshold=config.clip_threshold,
        buffer_size=config.buffer_size,
        refresh_period=config.refresh_period,
    )


@pytest.mark.benchmark(group="live")
def test_live_traffic_vs_stop_the_world(benchmark, scale, save_result):
    rounds, erasures = SIZES.get(scale, SIZES["ci"])
    seed = 2024
    # Enough clients that E erasures leave a healthy federation; the
    # config's own late joiner (highest id) stays out of the targets.
    clients = erasures + 5
    targets = list(range(clients - 1 - erasures, clients - 1))
    # Staggered joins: vehicle i appears at round 2+2i and requests
    # erasure shortly after — the serve story's arrival layout.
    joins = {cid: 2 + 2 * i for i, cid in enumerate(targets)}

    # Round arrivals are modelled with paced permits granted by a
    # feeder thread every TRAIN_LATENCY_S: the trainer waits for its
    # permit *outside* the train gate, so the inter-round latency is
    # genuinely idle time an erasure can overlap (whereas a sleeping
    # round_callback would hold the gate and starve commits).  Both
    # the solo and the loaded runs use the identical arrival model, so
    # the degradation claim compares like with like.
    def paced_run(submit):
        config, workload, sim = build_sim(
            scale, seed, rounds, clients, joins, FETCH_LATENCY_S
        )
        round_times = []

        def stamp(t, params):
            round_times.append(time.perf_counter())

        session = LiveTrainingSession(sim, rounds, round_callback=stamp, paced=True)
        live_service = make_service(
            config, sim.record_view(0), workload.model
        ).bind_live(session)
        daemon = ErasureDaemon(live_service, capacity=16, workers=2).start()

        def feeder():
            for _ in range(rounds):
                if session.done:
                    break
                session.allow_rounds(1)
                time.sleep(TRAIN_LATENCY_S)

        feed_thread = threading.Thread(target=feeder, daemon=True)
        outcomes = []
        start = time.perf_counter()
        try:
            session.start()
            feed_thread.start()
            for cid in submit:
                # The vehicle requests erasure one round after joining.
                session.wait_for_round(joins[cid] + 1, timeout=120)
                response = daemon.submit(cid).result(timeout=300)
                assert response.status == "ok"
                outcomes.append(response.outcomes[0])
            record = session.result(timeout=300)
            wall = time.perf_counter() - start
        finally:
            session.release_pacing()
            session.stop()
            daemon.stop(mode="drain")
            feed_thread.join(timeout=30)
        train_wall = round_times[-1] - start
        return config, workload, record, outcomes, wall, train_wall, session

    # --- 1. stop-the-world baseline: train solo, then erase over the
    # frozen record sequentially --------------------------------------
    config, workload, frozen, _, _, t_train_solo, _ = paced_run(submit=())
    service = make_service(config, frozen, workload.model)
    erase_solo_seconds = []
    for cid in targets:
        start = time.perf_counter()
        service.handle_erasure_request(cid)
        erase_solo_seconds.append(time.perf_counter() - start)
    baseline_wall = t_train_solo + sum(erase_solo_seconds)

    # --- 2. live path: identical workload, erasures ride along -------
    _, _, _, outcomes, live_wall, train_wall, session = benchmark.pedantic(
        lambda: paced_run(submit=targets), rounds=1
    )

    # --- 3. claims ----------------------------------------------------
    speedup = baseline_wall / live_wall
    slowdown = train_wall / t_train_solo - 1.0
    assert speedup >= 2.0, (
        f"live path only {speedup:.2f}x over stop-the-world "
        f"({baseline_wall:.2f}s vs {live_wall:.2f}s)"
    )
    assert slowdown <= 0.25, (
        f"training degraded {slowdown:.0%} while erasures were in flight "
        f"({train_wall:.2f}s vs {t_train_solo:.2f}s solo)"
    )

    # Byte identity of the first commit vs the sequential reference:
    # train the same seed stop-the-world to the commit round, then
    # unlearn the same client over the frozen prefix.
    first = outcomes[0]
    assert first.merge_mode == "replay"
    _, ref_workload, ref_sim = build_sim(scale, seed, rounds, clients, joins)
    ref_record = ref_sim.run(first.commit_round)
    ref = SignRecoveryUnlearner(
        clip_threshold=config.clip_threshold,
        buffer_size=config.buffer_size,
        refresh_period=config.refresh_period,
    ).unlearn(ref_record, [targets[0]], ref_workload.model)
    identical = ref.params.tobytes() == first.params.tobytes()
    assert identical, (
        f"replay merge diverged from the sequential reference at commit "
        f"round {first.commit_round}"
    )

    save_result(
        "live",
        {
            "scale": scale,
            "rounds": rounds,
            "erasures": len(targets),
            "train_latency_seconds": TRAIN_LATENCY_S,
            "fetch_latency_seconds": FETCH_LATENCY_S,
            "latency_model": (
                "time.sleep per training round (client compute/upload) and "
                "per replayed round fetch (cold archive); sleeps release "
                "the GIL so overlap is measurable on one core"
            ),
            "stop_the_world": {
                "train_seconds": t_train_solo,
                "erase_seconds": erase_solo_seconds,
                "total_seconds": baseline_wall,
            },
            "live": {
                "wall_seconds": live_wall,
                "train_wall_seconds": train_wall,
                "training_slowdown_fraction": slowdown,
                "merge_mode": "replay",
                "tail_rounds": [
                    int(o.commit_round - o.snapshot_watermark) for o in outcomes
                ],
                "commit_conflicts": sum(o.commit_conflicts for o in outcomes),
                "snapshot_pins": session.registry.pins_total,
                "deferred_drops": session.registry.deferred_total,
            },
            "aggregate_throughput_speedup": speedup,
            "first_commit_identical_to_sequential": identical,
        },
    )
