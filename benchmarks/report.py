"""Aggregate tracked benchmark records into one summary.

Reads every ``benchmarks/results/*.json`` record (the files the
``bench-*`` targets write) and distils each into a one-line row —
benchmark name, a headline metric, and any speedups found anywhere in
the record — then writes the collection to ``results/summary.json``
and prints the table.  Run via ``make bench-report``.

The records are heterogeneous by design (each benchmark saves the
shape its workload needs), so the headline is chosen heuristically:
the first scalar whose key matches, in order, ``speedup``,
``accuracy``, ``seconds``, ``bytes``.  Embedded telemetry snapshots
are skipped — they are schemas, not headlines.
"""

from __future__ import annotations

import glob
import json
import os
from typing import Dict, Iterator, Tuple

RESULTS_GLOB = os.path.join(os.path.dirname(__file__), "results", "*.json")
SUMMARY_PATH = os.path.join(
    os.path.dirname(__file__), os.pardir, "results", "summary.json"
)
#: Key substrings that make a scalar headline-worthy, most wanted first.
HEADLINE_PRIORITY = ("speedup", "accuracy", "recovered", "seconds", "bytes")


def _walk_scalars(record, prefix: str = "") -> Iterator[Tuple[str, float]]:
    """Yield ``(dotted.path, value)`` for every finite scalar leaf."""
    if isinstance(record, dict):
        for key, value in record.items():
            if key == "telemetry":
                continue
            path = f"{prefix}.{key}" if prefix else str(key)
            yield from _walk_scalars(value, path)
    elif isinstance(record, list):
        for index, value in enumerate(record):
            yield from _walk_scalars(value, f"{prefix}[{index}]")
    elif isinstance(record, (int, float)) and not isinstance(record, bool):
        yield prefix, float(record)


def summarize_record(name: str, record: dict) -> dict:
    scalars = list(_walk_scalars(record))
    speedups: Dict[str, float] = {
        path: value for path, value in scalars if "speedup" in path.lower()
    }
    headline = None
    if speedups:
        path, value = max(speedups.items(), key=lambda item: item[1])
        headline = {"metric": path, "value": value}
    for pattern in HEADLINE_PRIORITY if headline is None else ():
        for path, value in scalars:
            if pattern in path.lower():
                headline = {"metric": path, "value": value}
                break
        if headline:
            break
    row = {"name": name, "headline": headline}
    if speedups:
        row["speedups"] = speedups
    scale = record.get("scale")
    if scale is not None:
        row["scale"] = scale
    return row


def build_summary() -> dict:
    rows = []
    for path in sorted(glob.glob(RESULTS_GLOB)):
        name = os.path.splitext(os.path.basename(path))[0]
        try:
            with open(path) as handle:
                record = json.load(handle)
        except (OSError, ValueError) as exc:
            rows.append({"name": name, "error": str(exc)})
            continue
        rows.append(summarize_record(name, record))
    return {"source": "benchmarks/results", "benchmarks": rows}


def main() -> int:
    summary = build_summary()
    os.makedirs(os.path.dirname(SUMMARY_PATH), exist_ok=True)
    with open(SUMMARY_PATH, "w") as handle:
        json.dump(summary, handle, indent=2, sort_keys=True)
        handle.write("\n")
    for row in summary["benchmarks"]:
        headline = row.get("headline") or {"metric": "-", "value": float("nan")}
        best = max(row.get("speedups", {}).values(), default=None)
        speedup = f"{best:.2f}x" if best is not None else "-"
        print(
            f"{row['name']:<24} {speedup:>8}  "
            f"{headline['metric']} = {headline['value']:.6g}"
        )
    print(f"\nwrote {os.path.relpath(SUMMARY_PATH)} "
          f"({len(summary['benchmarks'])} benchmarks)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
